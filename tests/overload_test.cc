// Overload-resilience contract (docs/OVERLOAD.md): with NO FaultPlan
// anywhere, an offered load beyond the provisioned capacity must degrade
// gracefully through three independent layers —
//
//   * the index store throttles organically (kResourceExhausted + a
//     Retry-After hint) once its fluid backlog exceeds the delay bound,
//     and hint-paced retries converge to the provisioned throughput with
//     bounded queues;
//   * engine admission control defers or sheds queries (typed
//     kOverloaded) under token-bucket and AIMD concurrency limits,
//     fairly per tenant, without billing a single unit of loser work and
//     without perturbing the bit-identical rows of admitted queries;
//   * the reactive autoscaler follows the load between its bounds,
//     deterministically in virtual time (serial == host-parallel), and
//     its control-loop state survives a snapshot v4 round trip with
//     v1-v3 images still restorable.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud_env.h"
#include "cloud/snapshot.h"
#include "engine/admission.h"
#include "engine/warehouse.h"
#include "xmark/paintings.h"
#include "xmark/xmark_generator.h"

namespace webdex::engine {
namespace {

using index::StrategyKind;

class Agent : public cloud::SimAgent {};

std::vector<xmark::GeneratedDocument> Corpus() {
  auto docs = xmark::GeneratePaintings();
  xmark::GeneratorConfig config;
  config.num_documents = 8;
  config.entities_per_document = 6;
  for (auto& doc : xmark::XmarkGenerator(config).GenerateAll()) {
    docs.push_back(std::move(doc));
  }
  return docs;
}

const char* kQuery = "//painting[/name~'Lion', //painter/name/last:val]";

// ---------------------------------------------------------------------------
// Layer 1: the fluid limiter's read-only backlog probe and the organic
// throttle contract of the store built on it.

TEST(OverloadTest, RateLimiterBacklogProbeIsReadOnly) {
  cloud::RateLimiter limiter(100);  // 10'000 us per unit
  EXPECT_EQ(limiter.BacklogAt(0), 0);

  // Two units committed at t=0 finish at t=20'000.
  EXPECT_EQ(limiter.Acquire(0, 2), 20'000);
  EXPECT_EQ(limiter.BacklogAt(0), 20'000);
  EXPECT_EQ(limiter.BacklogAt(5'000), 15'000);
  EXPECT_EQ(limiter.BacklogAt(20'000), 0);
  // Probing consumes nothing: ask again, same answer.
  EXPECT_EQ(limiter.BacklogAt(5'000), 15'000);

  // An idle gap drains the backlog entirely.
  EXPECT_EQ(limiter.BacklogAt(60'000), 0);
  EXPECT_EQ(limiter.Acquire(60'000, 1), 70'000);

  // Re-provisioning rescales the *remaining* work: 1 unit of backlog at
  // 100 u/s becomes half the wait at 200 u/s.
  limiter.SetRate(200, 65'000);
  EXPECT_DOUBLE_EQ(limiter.units_per_second(), 200);
  EXPECT_EQ(limiter.BacklogAt(65'000), 2'500);
}

TEST(OverloadTest, OrganicThrottleCarriesRetryAfterHint) {
  cloud::CloudConfig config;
  config.dynamodb.read_units_per_second = 1;  // 8 KB item = 2 s service
  config.dynamodb.max_backlog_micros = cloud::kMicrosPerSecond;
  cloud::CloudEnv env(config);
  Agent writer;
  ASSERT_TRUE(env.dynamodb().CreateTable(writer, "t").ok());
  cloud::Item item{"k", "r", {{"v", {std::string(8 * 1024, 'x')}}}};
  ASSERT_TRUE(env.dynamodb().BatchPut(writer, "t", {item}).ok());

  const cloud::Usage before = env.meter().Snapshot();
  Agent first;
  ASSERT_TRUE(env.dynamodb().Get(first, "t", "k").ok());
  const double units_per_get =
      (env.meter().Snapshot() - before).ddb_read_units;
  ASSERT_GT(units_per_get, 0.0);

  // A second reader at t=0 would queue behind ~2 s of committed work —
  // past the 1 s bound, so the store sheds it with a hint instead.
  Agent second;
  auto throttled = env.dynamodb().Get(second, "t", "k");
  ASSERT_TRUE(throttled.status().IsResourceExhausted())
      << throttled.status().ToString();
  EXPECT_TRUE(throttled.status().IsRetriable());
  const int64_t hint = throttled.status().retry_after_micros();
  EXPECT_GT(hint, 0);

  // The hint is exact: a retry arriving hint micros later sits exactly at
  // the admission boundary and is served.
  second.Advance(static_cast<cloud::Micros>(hint));
  EXPECT_TRUE(env.dynamodb().Get(second, "t", "k").ok());

  const cloud::Usage delta = env.meter().Snapshot() - before;
  EXPECT_EQ(delta.throttled_requests, 1u);
  // The rejected request billed its API round trip but consumed no read
  // capacity: only the two served gets moved the capacity meter.
  EXPECT_EQ(delta.ddb_get_requests, 3u);
  EXPECT_DOUBLE_EQ(delta.ddb_read_units, 2 * units_per_get);
}

// Hint-paced retries are work-conserving: a fleet hammering a saturated
// store converges to the provisioned throughput (within 10%) and no
// queue grows without bound — every observed hint stays under the delay
// bound plus one in-flight round per contender.
TEST(OverloadTest, HintPacedRetriesConvergeToProvisionedThroughput) {
  constexpr double kReadUnitsPerSecond = 5;
  constexpr cloud::Micros kBound = 500'000;
  cloud::CloudConfig config;
  config.dynamodb.read_units_per_second = kReadUnitsPerSecond;
  config.dynamodb.max_backlog_micros = kBound;
  cloud::CloudEnv env(config);
  Agent writer;
  ASSERT_TRUE(env.dynamodb().CreateTable(writer, "t").ok());
  cloud::Item item{"k", "r", {{"v", {std::string(8 * 1024, 'x')}}}};
  ASSERT_TRUE(env.dynamodb().BatchPut(writer, "t", {item}).ok());
  const double units_per_get = 2.0;  // 8 KB / 4 KB read quantum
  const cloud::Micros service_per_get = static_cast<cloud::Micros>(
      units_per_get / kReadUnitsPerSecond * cloud::kMicrosPerSecond);

  const cloud::Usage before = env.meter().Snapshot();
  constexpr int kAgents = 6;
  constexpr int kGetsPerAgent = 30;
  std::array<Agent, kAgents> agents;
  std::array<int, kAgents> done{};
  uint64_t throttles = 0;
  cloud::Micros max_hint = 0;
  // Smallest-clock-first, like the cluster scheduler.
  for (;;) {
    int next = -1;
    for (int i = 0; i < kAgents; ++i) {
      if (done[i] < kGetsPerAgent &&
          (next < 0 || agents[i].now() < agents[next].now())) {
        next = i;
      }
    }
    if (next < 0) break;
    auto got = env.dynamodb().Get(agents[next], "t", "k");
    if (got.ok()) {
      ++done[next];
      continue;
    }
    ASSERT_TRUE(got.status().IsResourceExhausted()) << got.status().ToString();
    const int64_t hint = got.status().retry_after_micros();
    ASSERT_GT(hint, 0);
    max_hint = std::max(max_hint, static_cast<cloud::Micros>(hint));
    ++throttles;
    agents[next].Advance(static_cast<cloud::Micros>(hint));
  }
  EXPECT_GT(throttles, 0u);

  cloud::Micros elapsed = 0;
  for (const Agent& agent : agents) elapsed = std::max(elapsed, agent.now());
  const cloud::Usage delta = env.meter().Snapshot() - before;
  const double throughput =
      delta.ddb_read_units /
      (static_cast<double>(elapsed) / cloud::kMicrosPerSecond);
  EXPECT_GE(throughput, 0.9 * kReadUnitsPerSecond);
  EXPECT_LE(throughput, 1.05 * kReadUnitsPerSecond);
  // Bounded queues: no hint ever exceeded the delay bound plus one
  // in-flight get per contender (the work that can commit between a
  // probe and the paced retry it schedules).
  EXPECT_LE(max_hint, kBound + kAgents * service_per_get);
}

// ---------------------------------------------------------------------------
// Layer 1 at the warehouse: the knee is organic.  A fault-free deployment
// whose store enforces a delay bound throttles under load, the retry
// stack absorbs it, and the answers stay bit-identical to the unbounded
// deployment's.

struct OverloadFingerprint {
  QueryRunReport report;
  std::vector<std::vector<std::vector<std::string>>> rows;  // per outcome
  cloud::Usage usage;
};

OverloadFingerprint RunKnee(cloud::Micros backlog_bound, int repeats,
                            const AdmissionConfig& admission =
                                AdmissionConfig(),
                            int host_threads = 1) {
  cloud::CloudConfig cloud_config;
  cloud_config.dynamodb.read_units_per_second = 5;
  cloud_config.dynamodb.max_backlog_micros = backlog_bound;
  auto env = std::make_unique<cloud::CloudEnv>(cloud_config);
  WarehouseConfig config;
  config.strategy = StrategyKind::kLUP;
  config.num_instances = 2;
  config.host_threads = host_threads;
  config.admission = admission;
  Warehouse warehouse(env.get(), config);
  EXPECT_TRUE(warehouse.Setup().ok());
  for (const auto& doc : Corpus()) {
    EXPECT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
  }
  EXPECT_TRUE(warehouse.RunIndexers().ok());
  std::vector<std::string> workload;
  for (int i = 0; i < repeats; ++i) workload.push_back(kQuery);
  OverloadFingerprint out;
  auto report = warehouse.ExecuteQueries(workload);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) {
    out.report = report.value();
    for (const auto& outcome : out.report.outcomes) {
      out.rows.push_back(outcome.result.rows);
    }
  }
  out.usage = env->meter().usage();
  return out;
}

TEST(OverloadTest, OrganicThrottleAtTheKneeWithoutFaultPlan) {
  const OverloadFingerprint unbounded = RunKnee(/*backlog_bound=*/0, 8);
  const OverloadFingerprint bounded = RunKnee(/*backlog_bound=*/100'000, 8);

  // The knee fired organically: no FaultPlan, yet throttles and retries.
  EXPECT_EQ(bounded.usage.faulted_requests, 0u);
  EXPECT_GT(bounded.usage.throttled_requests, 0u);
  EXPECT_GT(bounded.usage.retried_requests, 0u);
  EXPECT_EQ(unbounded.usage.throttled_requests, 0u);

  // Nothing was shed (no admission control) and every answer matches the
  // unbounded deployment bit for bit.
  EXPECT_EQ(bounded.report.shed_queries, 0u);
  EXPECT_EQ(bounded.usage.shed_queries, 0u);
  ASSERT_EQ(bounded.rows.size(), unbounded.rows.size());
  EXPECT_EQ(bounded.rows, unbounded.rows);
  ASSERT_FALSE(bounded.rows.empty());
  ASSERT_FALSE(bounded.rows[0].empty());
  EXPECT_EQ(bounded.rows[0][0][0], "Delacroix");
}

// ---------------------------------------------------------------------------
// Layer 2: admission control.

TEST(OverloadTest, AdmissionDisabledIsInert) {
  cloud::CloudEnv env;
  AdmissionController controller(AdmissionConfig(), &env.meter());
  EXPECT_FALSE(controller.enabled());
  Agent agent;
  const AdmissionDecision decision = controller.Admit(agent, "t", 1);
  EXPECT_TRUE(decision.admitted);
  EXPECT_EQ(decision.waited, 0);
  EXPECT_EQ(agent.now(), 0);
  EXPECT_EQ(env.meter().usage().shed_queries, 0u);
}

TEST(OverloadTest, TokenBucketDefersToTheRefillInstant) {
  cloud::CloudEnv env;
  AdmissionConfig config;
  config.enabled = true;
  config.global_rate = 1;  // 1 query/s
  config.global_burst = 1;
  config.deadline_micros = 5 * cloud::kMicrosPerSecond;
  AdmissionController controller(config, &env.meter());

  Agent first;
  const AdmissionDecision a = controller.Admit(first, "", 1);
  EXPECT_TRUE(a.admitted);
  EXPECT_EQ(first.now(), 0);

  // The burst token is gone; the next query waits exactly one refill.
  Agent second;
  const AdmissionDecision b = controller.Admit(second, "", 2);
  EXPECT_TRUE(b.admitted);
  EXPECT_EQ(second.now(), cloud::kMicrosPerSecond);
  EXPECT_EQ(b.waited, cloud::kMicrosPerSecond);
}

TEST(OverloadTest, DeadlineBudgetShedsWithTypedOverload) {
  cloud::CloudEnv env;
  AdmissionConfig config;
  config.enabled = true;
  config.global_rate = 0.001;  // next token ~1000 s away
  config.global_burst = 1;
  config.deadline_micros = 0;  // pure load shedding
  AdmissionController controller(config, &env.meter());

  Agent first;
  EXPECT_TRUE(controller.Admit(first, "", 1).admitted);
  Agent second;
  const AdmissionDecision shed = controller.Admit(second, "", 2);
  EXPECT_FALSE(shed.admitted);
  EXPECT_TRUE(shed.status.IsOverloaded());
  EXPECT_FALSE(shed.status.IsRetriable());
  EXPECT_EQ(second.now(), 0);  // shedding is instant, no deferral
  EXPECT_EQ(env.meter().usage().shed_queries, 1u);
}

TEST(OverloadTest, AimdLimiterGrowsAdditivelyShrinksMultiplicatively) {
  cloud::CloudEnv env;
  AdmissionConfig config;
  config.enabled = true;
  config.initial_concurrency = 3;
  config.min_concurrency = 1;
  config.max_concurrency = 4;
  config.decrease_factor = 0.5;
  AdmissionController controller(config, &env.meter());
  EXPECT_EQ(controller.concurrency_limit(), 3);

  controller.OnCompleted(0, 100, /*saw_throttle=*/false);
  EXPECT_EQ(controller.concurrency_limit(), 4);
  controller.OnCompleted(100, 200, /*saw_throttle=*/false);
  EXPECT_EQ(controller.concurrency_limit(), 4);  // clamped at max
  controller.OnCompleted(200, 300, /*saw_throttle=*/true);
  EXPECT_EQ(controller.concurrency_limit(), 2);
  controller.OnCompleted(300, 400, /*saw_throttle=*/true);
  EXPECT_EQ(controller.concurrency_limit(), 1);
  controller.OnCompleted(400, 500, /*saw_throttle=*/true);
  EXPECT_EQ(controller.concurrency_limit(), 1);  // clamped at min

  // The in-flight table is interval overlap, pruned lazily.
  controller.OnCompleted(1'000, 2'000, /*saw_throttle=*/false);
  EXPECT_EQ(controller.InFlightAt(1'500), 1);
  EXPECT_EQ(controller.InFlightAt(2'000), 0);
}

TEST(OverloadTest, ConcurrencyGateWaitsForTheEarliestCompletion) {
  cloud::CloudEnv env;
  AdmissionConfig config;
  config.enabled = true;
  config.initial_concurrency = 1;
  config.max_concurrency = 1;  // hold the limit at one
  config.deadline_micros = 2 * cloud::kMicrosPerSecond;
  AdmissionController controller(config, &env.meter());

  Agent first;
  EXPECT_TRUE(controller.Admit(first, "", 1).admitted);
  controller.OnCompleted(0, 600'000, /*saw_throttle=*/false);

  // The slot frees when the recorded interval ends; the next query is
  // deferred exactly there.
  Agent second;
  const AdmissionDecision deferred = controller.Admit(second, "", 2);
  EXPECT_TRUE(deferred.admitted);
  EXPECT_EQ(second.now(), 600'000);
  EXPECT_EQ(deferred.waited, 600'000);
}

TEST(OverloadTest, IndexerBackpressureNeedsDepthAndFreshThrottles) {
  cloud::CloudEnv env;
  AdmissionConfig config;
  config.enabled = true;
  config.backpressure_queue_depth = 4;
  config.backpressure_pause = 250'000;
  AdmissionController controller(config, &env.meter());

  // Depth without fresh throttles is healthy queueing: no pause.
  EXPECT_EQ(controller.IndexerBackoff(0, /*queue_depth=*/10,
                                      /*throttled_total=*/0),
            0);
  // Fresh throttles plus depth: pace the fleet.
  EXPECT_EQ(controller.IndexerBackoff(0, 10, 2), 250'000);
  // Same throttle total again: the signal is no longer fresh.
  EXPECT_EQ(controller.IndexerBackoff(250'000, 10, 2), 0);
  // Fresh throttles but a shallow queue: the store is shedding, the
  // pipeline is not the problem.
  EXPECT_EQ(controller.IndexerBackoff(500'000, 2, 5), 0);
}

// A hot tenant exhausts its own bucket and is shed; the cold tenant's
// queries keep being admitted — fairness comes from per-tenant buckets,
// not from luck of arrival order.
TEST(OverloadTest, PerTenantBucketsShedTheHotTenantOnly) {
  cloud::CloudConfig cloud_config;
  auto env = std::make_unique<cloud::CloudEnv>(cloud_config);
  WarehouseConfig config;
  config.strategy = StrategyKind::kLUP;
  config.num_instances = 2;
  config.admission.enabled = true;
  config.admission.per_tenant_rate = 0.001;  // no meaningful refill
  config.admission.per_tenant_burst = 2;
  config.admission.deadline_micros = 0;  // shed, never queue
  Warehouse warehouse(env.get(), config);
  ASSERT_TRUE(warehouse.Setup().ok());
  for (const auto& doc : Corpus()) {
    ASSERT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
  }
  ASSERT_TRUE(warehouse.RunIndexers().ok());

  std::vector<TenantQuery> workload;
  for (int i = 0; i < 12; ++i) workload.push_back({"hot", kQuery});
  workload.insert(workload.begin() + 3, {"cold", kQuery});
  workload.push_back({"cold", kQuery});

  auto report = warehouse.ExecuteQueries(workload);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  uint64_t hot_admitted = 0, hot_shed = 0, cold_admitted = 0, cold_shed = 0;
  for (const auto& outcome : report.value().outcomes) {
    ASSERT_TRUE(outcome.tenant == "hot" || outcome.tenant == "cold");
    uint64_t& counter = outcome.tenant == "hot"
                            ? (outcome.shed ? hot_shed : hot_admitted)
                            : (outcome.shed ? cold_shed : cold_admitted);
    ++counter;
    if (outcome.shed) {
      EXPECT_TRUE(outcome.result.rows.empty());
      EXPECT_EQ(outcome.docs_fetched, 0u);
    } else {
      EXPECT_FALSE(outcome.result.rows.empty());
    }
  }
  // Each tenant got exactly its burst; only the hot tenant overflowed.
  EXPECT_EQ(hot_admitted, 2u);
  EXPECT_EQ(hot_shed, 10u);
  EXPECT_EQ(cold_admitted, 2u);
  EXPECT_EQ(cold_shed, 0u);
  EXPECT_EQ(report.value().shed_queries, 10u);
  EXPECT_EQ(env->meter().usage().shed_queries, 10u);
}

// Shed queries bill nothing: the run that sheds nine of ten queries
// consumes exactly the index-store and file-store work of the run that
// only ever saw the admitted one, the breaker never short-circuits, and
// the admitted query's outcome is bit-identical.
TEST(OverloadTest, ShedQueriesBillNoLoserWork) {
  auto build = [](const AdmissionConfig& admission) {
    cloud::CloudConfig cloud_config;
    auto env = std::make_unique<cloud::CloudEnv>(cloud_config);
    WarehouseConfig config;
    config.strategy = StrategyKind::kLUP;
    config.num_instances = 1;  // FIFO: the first query is the admitted one
    config.admission = admission;
    auto warehouse = std::make_unique<Warehouse>(env.get(), config);
    EXPECT_TRUE(warehouse->Setup().ok());
    for (const auto& doc : Corpus()) {
      EXPECT_TRUE(warehouse->SubmitDocument(doc.uri, doc.text).ok());
    }
    EXPECT_TRUE(warehouse->RunIndexers().ok());
    return std::make_pair(std::move(env), std::move(warehouse));
  };

  // Baseline: no admission, exactly the one query that will be admitted.
  auto [base_env, base_wh] = build(AdmissionConfig());
  const cloud::Usage base_before = base_env->meter().Snapshot();
  auto base_report = base_wh->ExecuteQueries(std::vector<std::string>{kQuery});
  ASSERT_TRUE(base_report.ok());
  const cloud::Usage base_delta = base_env->meter().Snapshot() - base_before;

  // Overloaded: ten queries, a global burst of one, shed-don't-queue.
  AdmissionConfig admission;
  admission.enabled = true;
  admission.global_rate = 0.001;
  admission.global_burst = 1;
  admission.deadline_micros = 0;
  auto [shed_env, shed_wh] = build(admission);
  const cloud::Usage shed_before = shed_env->meter().Snapshot();
  auto shed_report = shed_wh->ExecuteQueries(
      std::vector<std::string>(10, std::string(kQuery)));
  ASSERT_TRUE(shed_report.ok());
  const cloud::Usage shed_delta = shed_env->meter().Snapshot() - shed_before;

  ASSERT_EQ(shed_report.value().outcomes.size(), 10u);
  EXPECT_EQ(shed_report.value().shed_queries, 9u);
  EXPECT_EQ(shed_delta.shed_queries, 9u);
  const QueryOutcome& admitted = shed_report.value().outcomes[0];
  const QueryOutcome& baseline = base_report.value().outcomes[0];
  EXPECT_FALSE(admitted.shed);
  for (size_t i = 1; i < shed_report.value().outcomes.size(); ++i) {
    EXPECT_TRUE(shed_report.value().outcomes[i].shed);
  }

  // The admitted query is unperturbed: same rows, same work, same split.
  EXPECT_EQ(admitted.result.rows, baseline.result.rows);
  EXPECT_EQ(admitted.docs_fetched, baseline.docs_fetched);
  EXPECT_EQ(admitted.timings.total, baseline.timings.total);

  // Loser work was never billed: the shed run did exactly the admitted
  // query's index reads, document fetches and egress — and the breaker
  // stack was never involved.
  EXPECT_EQ(shed_delta.ddb_get_requests, base_delta.ddb_get_requests);
  EXPECT_DOUBLE_EQ(shed_delta.ddb_read_units, base_delta.ddb_read_units);
  EXPECT_EQ(shed_delta.s3_get_requests, base_delta.s3_get_requests);
  EXPECT_EQ(shed_delta.egress_bytes, base_delta.egress_bytes);
  EXPECT_EQ(shed_delta.breaker_short_circuits, 0u);
  EXPECT_EQ(shed_delta.degraded_queries, 0u);
}

// The AIMD limiter reacts to organic throttles end to end: an admitted
// workload over a bounded store completes with the limit pulled inside
// its configured band, and the answers still match.
TEST(OverloadTest, AimdConvergesUnderOrganicThrottling) {
  AdmissionConfig admission;
  admission.enabled = true;
  admission.initial_concurrency = 8;
  admission.min_concurrency = 1;
  admission.max_concurrency = 8;
  admission.deadline_micros = 30 * cloud::kMicrosPerSecond;
  const OverloadFingerprint run = RunKnee(/*backlog_bound=*/100'000, 8,
                                          admission);
  EXPECT_GT(run.usage.throttled_requests, 0u);
  EXPECT_EQ(run.usage.faulted_requests, 0u);
  EXPECT_EQ(run.report.shed_queries, 0u);  // deferred, never dropped
  ASSERT_EQ(run.rows.size(), 8u);
  const OverloadFingerprint clean = RunKnee(/*backlog_bound=*/0, 8);
  EXPECT_EQ(run.rows, clean.rows);
}

// ---------------------------------------------------------------------------
// Layer 3: the reactive autoscaler.

cloud::CloudConfig AutoscaledConfig() {
  cloud::CloudConfig config;
  config.dynamodb.read_units_per_second = 5;
  config.dynamodb.max_backlog_micros = 100'000;
  config.autoscale.enabled = true;
  config.autoscale.min_read_units = 5;
  config.autoscale.max_read_units = 250;
  config.autoscale.min_write_units = 100;
  config.autoscale.max_write_units = 400;
  config.autoscale.evaluation_interval = cloud::kMicrosPerSecond;
  config.autoscale.scale_up_cooldown = cloud::kMicrosPerSecond;
  config.autoscale.scale_down_cooldown = 20 * cloud::kMicrosPerSecond;
  return config;
}

struct AutoscaleFingerprint {
  std::vector<std::vector<std::vector<std::string>>> rows;
  cloud::Usage usage;
  cloud::AutoscalerState state;
  cloud::Micros makespan = 0;
  double dollars = 0;
};

AutoscaleFingerprint RunAutoscaled(int host_threads) {
  auto env = std::make_unique<cloud::CloudEnv>(AutoscaledConfig());
  WarehouseConfig config;
  config.strategy = StrategyKind::kLUP;
  config.num_instances = 2;
  config.host_threads = host_threads;
  Warehouse warehouse(env.get(), config);
  EXPECT_TRUE(warehouse.Setup().ok());
  for (const auto& doc : Corpus()) {
    EXPECT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
  }
  EXPECT_TRUE(warehouse.RunIndexers().ok());
  std::vector<std::string> workload(16, std::string(kQuery));
  AutoscaleFingerprint out;
  auto report = warehouse.ExecuteQueries(workload);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) {
    out.makespan = report.value().makespan;
    for (const auto& outcome : report.value().outcomes) {
      out.rows.push_back(outcome.result.rows);
    }
  }
  env->autoscaler().FinishBilling(warehouse.front_end().now());
  out.usage = env->meter().usage();
  out.state = env->autoscaler().state();
  out.dollars = env->meter().ComputeBill().total();
  return out;
}

TEST(OverloadTest, AutoscalerFollowsTheLoadDeterministically) {
  const AutoscaleFingerprint serial = RunAutoscaled(/*host_threads=*/1);

  // The controller reacted: scale events fired and read capacity moved
  // off the floor while the overload was in flight.
  EXPECT_GT(serial.usage.scale_events, 0u);
  EXPECT_GT(serial.usage.throttled_requests, 0u);
  EXPECT_GT(serial.state.read_units, 5.0);
  EXPECT_GT(serial.usage.ddb_read_capacity_hours, 0.0);
  EXPECT_GT(serial.usage.ddb_write_capacity_hours, 0.0);

  // The capacity trajectory is a pure function of virtual time: the
  // host-parallel run is bit-identical, dollars included.
  const AutoscaleFingerprint parallel = RunAutoscaled(/*host_threads=*/8);
  EXPECT_EQ(serial.rows, parallel.rows);
  EXPECT_EQ(serial.makespan, parallel.makespan);
  EXPECT_EQ(serial.usage.scale_events, parallel.usage.scale_events);
  EXPECT_EQ(serial.usage.throttled_requests,
            parallel.usage.throttled_requests);
  EXPECT_DOUBLE_EQ(serial.state.write_units, parallel.state.write_units);
  EXPECT_DOUBLE_EQ(serial.state.read_units, parallel.state.read_units);
  EXPECT_EQ(serial.state.window_start, parallel.state.window_start);
  EXPECT_EQ(serial.state.last_scale_up, parallel.state.last_scale_up);
  EXPECT_DOUBLE_EQ(serial.dollars, parallel.dollars);
}

// ---------------------------------------------------------------------------
// Snapshot: the control-loop state is durable, and every older image
// still restores (the missing sections simply start fresh).

TEST(OverloadTest, SnapshotRoundTripsAutoscalerState) {
  cloud::CloudConfig config = AutoscaledConfig();
  cloud::CloudEnv env(config);
  Agent writer;
  ASSERT_TRUE(env.dynamodb().CreateTable(writer, "t").ok());
  cloud::Item item{"k", "r", {{"v", {std::string(8 * 1024, 'x')}}}};
  ASSERT_TRUE(env.dynamodb().BatchPut(writer, "t", {item}).ok());
  // Hammer the store long enough for the control loop to scale.
  std::array<Agent, 4> agents;
  for (int round = 0; round < 40; ++round) {
    for (Agent& agent : agents) {
      auto got = env.dynamodb().Get(agent, "t", "k");
      if (!got.ok()) {
        ASSERT_TRUE(got.status().IsResourceExhausted());
        agent.Advance(
            static_cast<cloud::Micros>(got.status().retry_after_micros()));
      }
    }
  }
  ASSERT_GT(env.meter().usage().scale_events, 0u);
  const cloud::AutoscalerState& state = env.autoscaler().state();
  EXPECT_EQ(state.started, 1u);

  const std::string snapshot = SerializeSnapshot(env);
  ASSERT_GE(snapshot.size(), 8u);
  EXPECT_EQ(snapshot.substr(0, 8), "WDXSNAP5");

  cloud::CloudEnv restored(config);
  ASSERT_TRUE(RestoreSnapshot(snapshot, &restored).ok());
  const cloud::AutoscalerState& back = restored.autoscaler().state();
  EXPECT_DOUBLE_EQ(back.write_units, state.write_units);
  EXPECT_DOUBLE_EQ(back.read_units, state.read_units);
  EXPECT_EQ(back.window_start, state.window_start);
  EXPECT_EQ(back.last_scale_up, state.last_scale_up);
  EXPECT_EQ(back.last_scale_down, state.last_scale_down);
  EXPECT_DOUBLE_EQ(back.window_write_units, state.window_write_units);
  EXPECT_DOUBLE_EQ(back.window_read_units, state.window_read_units);
  EXPECT_EQ(back.window_write_throttles, state.window_write_throttles);
  EXPECT_EQ(back.window_read_throttles, state.window_read_throttles);
  EXPECT_EQ(back.started, state.started);
  // Restore re-applied the scaled capacity to the store's limiters.
  EXPECT_DOUBLE_EQ(restored.dynamodb().read_units_per_second(),
                   state.read_units);
  // And the round trip is bytewise stable.
  EXPECT_EQ(SerializeSnapshot(restored), snapshot);
}

TEST(OverloadTest, LegacySnapshotVersionsStillRestore) {
  // A fresh environment serializes to the minimal v5 image: magic, the
  // twenty zero bytes of the v4 sections (6 store varints, 2 chaos
  // counts, empty cursor + watermark, 10 zeroed autoscaler fields), then
  // the default deployment section.
  cloud::CloudEnv fresh;
  std::string expected = std::string("WDXSNAP5") + std::string(20, '\0');
  expected += '\0';            // capacity: provisioned
  expected += '\x01';          // 1 shard
  expected += '\0';            // 0 replicas
  expected += "\xa0\xc2\x1e";  // 500 ms replication lag, varint-coded
  // No watermarks + 7 zeroed on-demand fields.
  expected += std::string(8, '\0');
  EXPECT_EQ(SerializeSnapshot(fresh), expected);

  // Minimal legacy images: each version's sections, all empty.
  const std::string v1 = std::string("WDXSNAP1") + std::string(6, '\0');
  const std::string v2 = std::string("WDXSNAP2") + std::string(8, '\0');
  const std::string v3 = std::string("WDXSNAP3") + std::string(10, '\0');
  const std::string v4 = std::string("WDXSNAP4") + std::string(20, '\0');
  for (const std::string& image : {v1, v2, v3, v4}) {
    cloud::CloudEnv restored;
    ASSERT_TRUE(RestoreSnapshot(image, &restored).ok())
        << "version tag " << image.substr(0, 8);
    EXPECT_TRUE(restored.dynamodb().Empty());
    // The autoscaler section was absent: the control loop starts fresh.
    EXPECT_EQ(restored.autoscaler().state().started, 0u);
  }
  // Trailing garbage is still rejected on every path.
  cloud::CloudEnv reject;
  EXPECT_TRUE(RestoreSnapshot(v3 + "x", &reject).IsCorruption());
}

}  // namespace
}  // namespace webdex::engine
