#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

namespace webdex::common {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ReturnsTaskResults) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return std::string("fine"); });
  auto bad = pool.Submit([]() -> std::string {
    throw std::runtime_error("task failed");
  });
  EXPECT_EQ(ok.get(), "fine");
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task and keeps serving.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(pool.Submit([] { return 42; }).get(), 42);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      (void)pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

}  // namespace
}  // namespace webdex::common
