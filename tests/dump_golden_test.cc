// Byte-level equivalence oracle for the native index core: for every
// strategy, the serialized index a tiny deterministic corpus produces is
// pinned by a committed golden digest (tests/golden/index_dumps.txt).
// Any change to key encoding, path escaping, varint codecs, item packing
// or UUID range-key streams shifts the digest and fails here — which is
// exactly what guarantees the interned hot path rewrote *how* the index
// is built, not *what* it contains.
//
// Regenerate deliberately with WEBDEX_UPDATE_GOLDEN=1 (the test then
// rewrites the file and fails, so a stale run cannot silently pass).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/strings.h"
#include "engine/warehouse.h"
#include "xmark/xmark_generator.h"

namespace webdex::engine {
namespace {

using index::StrategyKind;

xmark::GeneratorConfig TinyCorpus() {
  xmark::GeneratorConfig config;
  config.num_documents = 6;
  config.entities_per_document = 10;
  config.split_sections = true;
  return config;
}

/// Canonical byte stream of every index table: ForEachItem's
/// deterministic (table, hash, range) order with length-prefixed fields,
/// so no separator can collide with payload bytes.
std::string DumpIndex(const cloud::KvStore& store) {
  std::string dump;
  store.ForEachItem([&dump](const std::string& table,
                            const cloud::Item& item) {
    const auto append = [&dump](const std::string& s) {
      dump += StrFormat("%zu:", s.size());
      dump += s;
    };
    append(table);
    append(item.hash_key);
    append(item.range_key);
    for (const auto& [name, values] : item.attrs) {
      append(name);
      for (const std::string& value : values) append(value);
    }
    dump += '\n';
  });
  return dump;
}

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Builds the tiny corpus index with `host_threads` extraction threads
/// and returns the canonical dump.
std::string BuildDump(StrategyKind strategy, int host_threads) {
  auto env = std::make_unique<cloud::CloudEnv>(cloud::CloudConfig());
  WarehouseConfig config;
  config.strategy = strategy;
  config.num_instances = 4;
  config.host_threads = host_threads;
  Warehouse warehouse(env.get(), config);
  EXPECT_TRUE(warehouse.Setup().ok());
  const auto corpus = TinyCorpus();
  xmark::XmarkGenerator generator(corpus);
  for (int i = 0; i < corpus.num_documents; ++i) {
    auto doc = generator.Generate(i);
    EXPECT_TRUE(warehouse.SubmitDocument(doc.uri, std::move(doc.text)).ok());
  }
  auto report = warehouse.RunIndexers();
  EXPECT_TRUE(report.ok());
  return DumpIndex(env->dynamodb());
}

std::string GoldenPath() {
  // __FILE__ is the absolute source path under CMake, so the golden file
  // lives next to this test regardless of the build directory.
  std::string path = __FILE__;
  path = path.substr(0, path.find_last_of('/'));
  return path + "/golden/index_dumps.txt";
}

std::map<std::string, std::string> ReadGolden() {
  std::map<std::string, std::string> golden;
  std::ifstream in(GoldenPath());
  std::string strategy, digest;
  while (in >> strategy >> digest) golden[strategy] = digest;
  return golden;
}

TEST(DumpGoldenTest, SerializedIndexMatchesGoldenPerStrategy) {
  const bool update = std::getenv("WEBDEX_UPDATE_GOLDEN") != nullptr;
  const auto golden = ReadGolden();
  std::ostringstream regenerated;
  bool all_match = true;
  for (const StrategyKind kind : index::AllStrategyKinds()) {
    const std::string name = index::StrategyKindName(kind);
    const std::string dump = BuildDump(kind, /*host_threads=*/1);
    ASSERT_FALSE(dump.empty()) << name;
    const std::string digest =
        StrFormat("%016llx-%zu",
                  static_cast<unsigned long long>(Fnv1a(dump)), dump.size());
    regenerated << name << " " << digest << "\n";
    auto it = golden.find(name);
    if (update) continue;
    ASSERT_NE(it, golden.end())
        << name << " missing from " << GoldenPath()
        << " — regenerate with WEBDEX_UPDATE_GOLDEN=1";
    EXPECT_EQ(it->second, digest)
        << name << ": serialized index changed. If intentional, "
        << "regenerate with WEBDEX_UPDATE_GOLDEN=1 and commit.";
    all_match = all_match && it->second == digest;
  }
  if (update) {
    std::ofstream out(GoldenPath(), std::ios::trunc);
    ASSERT_TRUE(out.good()) << GoldenPath();
    out << regenerated.str();
    FAIL() << "golden regenerated at " << GoldenPath()
           << " — rerun without WEBDEX_UPDATE_GOLDEN";
  }
  EXPECT_TRUE(all_match);
}

// Mutability regression (docs/MUTABILITY.md): a build with zero
// mutations stays at generation 0 — no posting carries the "~g" stamp
// attribute and the idx-meta table contributes no items — which is what
// keeps the dumps byte-identical to the committed pre-mutability goldens
// above.  If this fails, fix the stamping, never regenerate the golden.
TEST(DumpGoldenTest, ZeroMutationBuildsAreGenerationZero) {
  for (const StrategyKind kind : index::AllStrategyKinds()) {
    const std::string dump = BuildDump(kind, /*host_threads=*/1);
    ASSERT_FALSE(dump.empty());
    // Attribute names are length-prefixed in the canonical dump, so the
    // stamp would appear exactly as "2:~g" and a meta item would lead
    // with its length-prefixed table name.
    EXPECT_EQ(dump.find("2:~g"), std::string::npos)
        << index::StrategyKindName(kind);
    EXPECT_EQ(dump.find("8:idx-meta"), std::string::npos)
        << index::StrategyKindName(kind);
  }
}

TEST(DumpGoldenTest, SerialAndParallelDumpsAreByteIdentical) {
  for (const StrategyKind kind : index::AllStrategyKinds()) {
    const std::string serial = BuildDump(kind, /*host_threads=*/1);
    const std::string parallel = BuildDump(kind, /*host_threads=*/8);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel) << index::StrategyKindName(kind);
  }
}

}  // namespace
}  // namespace webdex::engine
