#include <gtest/gtest.h>

#include "cloud/dynamodb.h"

namespace webdex::cloud {
namespace {

class TestAgent : public SimAgent {};

Item MakeItem(std::string hash, std::string range,
              std::map<std::string, std::vector<std::string>> attrs) {
  Item item;
  item.hash_key = std::move(hash);
  item.range_key = std::move(range);
  item.attrs = std::move(attrs);
  return item;
}

class DynamoDbTest : public ::testing::Test {
 protected:
  DynamoDbTest() : meter_(Pricing()), db_(Config(), &meter_) {
    EXPECT_TRUE(db_.CreateTable(agent_, "t").ok());
  }

  static DynamoDbConfig Config() {
    DynamoDbConfig config;
    config.request_latency = 5'000;
    config.write_units_per_second = 1000;
    config.read_units_per_second = 2000;
    return config;
  }

  UsageMeter meter_;
  DynamoDb db_;
  TestAgent agent_;
};

TEST_F(DynamoDbTest, PutAndGetByHashKey) {
  ASSERT_TRUE(db_.BatchPut(agent_, "t",
                           {MakeItem("k", "r1", {{"doc1.xml", {"v1"}}}),
                            MakeItem("k", "r2", {{"doc2.xml", {"v2"}}})})
                  .ok());
  auto items = db_.Get(agent_, "t", "k");
  ASSERT_TRUE(items.ok());
  ASSERT_EQ(items.value().size(), 2u);
  EXPECT_EQ(items.value()[0].range_key, "r1");
  EXPECT_EQ(items.value()[1].attrs.at("doc2.xml")[0], "v2");
}

TEST_F(DynamoDbTest, GetMissingHashKeyReturnsEmpty) {
  auto items = db_.Get(agent_, "t", "nope");
  ASSERT_TRUE(items.ok());
  EXPECT_TRUE(items.value().empty());
  EXPECT_DOUBLE_EQ(meter_.usage().ddb_read_units,
                   DynamoDb::kMinReadBytes / 4096.0);  // floor
}

TEST_F(DynamoDbTest, UnknownTableFails) {
  EXPECT_TRUE(db_.Get(agent_, "nope", "k").status().IsNotFound());
  EXPECT_TRUE(db_.BatchPut(agent_, "nope", {}).IsNotFound());
  EXPECT_TRUE(db_.CreateTable(agent_, "t").IsAlreadyExists());
}

TEST_F(DynamoDbTest, SamePrimaryKeyReplacesItem) {
  ASSERT_TRUE(
      db_.BatchPut(agent_, "t", {MakeItem("k", "r", {{"a", {"old-value"}}})})
          .ok());
  ASSERT_TRUE(db_.BatchPut(agent_, "t", {MakeItem("k", "r", {{"b", {"x"}}})})
                  .ok());
  auto items = db_.Get(agent_, "t", "k");
  ASSERT_EQ(items.value().size(), 1u);
  EXPECT_EQ(items.value()[0].attrs.count("a"), 0u);
  EXPECT_EQ(items.value()[0].attrs.at("b")[0], "x");
  EXPECT_EQ(db_.ItemCount("t"), 1u);
  // Stored bytes reflect only the replacement.
  const Item replacement = MakeItem("k", "r", {{"b", {"x"}}});
  EXPECT_EQ(db_.StoredBytes("t"), replacement.SizeBytes());
}

TEST_F(DynamoDbTest, RejectsOversizedItem) {
  std::string huge(65 * 1024, 'x');
  auto status =
      db_.BatchPut(agent_, "t", {MakeItem("k", "r", {{"a", {huge}}})});
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(db_.ItemCount("t"), 0u);  // no partial effects
}

TEST_F(DynamoDbTest, RejectsEmptyOrHugeKeys) {
  EXPECT_TRUE(
      db_.BatchPut(agent_, "t", {MakeItem("", "r", {})}).IsInvalidArgument());
  EXPECT_TRUE(
      db_.BatchPut(agent_, "t", {MakeItem("k", "", {})}).IsInvalidArgument());
  EXPECT_TRUE(db_.BatchPut(agent_, "t",
                           {MakeItem(std::string(3000, 'k'), "r", {})})
                  .IsInvalidArgument());
}

TEST_F(DynamoDbTest, BinaryValuesSupported) {
  std::string binary("\x00\x01\xff\x7f", 4);
  ASSERT_TRUE(
      db_.BatchPut(agent_, "t", {MakeItem("k", "r", {{"u", {binary}}})})
          .ok());
  auto items = db_.Get(agent_, "t", "k");
  EXPECT_EQ(items.value()[0].attrs.at("u")[0], binary);
}

TEST_F(DynamoDbTest, WriteUnitsProportionalToItemSize) {
  // ~2.5 KB item: fractional units, size/1024 (see WriteUnits note).
  std::string payload(2500, 'x');
  const Item item = MakeItem("k", "r", {{"u", {payload}}});
  ASSERT_TRUE(db_.BatchPut(agent_, "t", {item}).ok());
  EXPECT_DOUBLE_EQ(meter_.usage().ddb_write_units,
                   static_cast<double>(item.SizeBytes()) / 1024.0);
  EXPECT_EQ(meter_.usage().ddb_items_written, 1u);
  EXPECT_EQ(meter_.usage().ddb_put_requests, 1u);
}

TEST_F(DynamoDbTest, TinyItemsPayThePerItemFloor) {
  const Item item = MakeItem("k", "r", {{"u", {"v"}}});
  ASSERT_TRUE(db_.BatchPut(agent_, "t", {item}).ok());
  EXPECT_DOUBLE_EQ(meter_.usage().ddb_write_units,
                   DynamoDb::kMinWriteBytes / 1024.0);
}

TEST_F(DynamoDbTest, BatchPutSplitsIntoApiBatchesOf25) {
  std::vector<Item> items;
  for (int i = 0; i < 60; ++i) {
    items.push_back(
        MakeItem("k" + std::to_string(i), "r", {{"u", {"v"}}}));
  }
  ASSERT_TRUE(db_.BatchPut(agent_, "t", items).ok());
  EXPECT_EQ(meter_.usage().ddb_put_requests, 3u);  // 25 + 25 + 10
  EXPECT_EQ(meter_.usage().ddb_items_written, 60u);
}

TEST_F(DynamoDbTest, ProvisionedWriteCapacityThrottles) {
  // 1000 write units/s provisioned; 8000 floored items (64 B / 1 KB =
  // 1/16 unit each) => 500 units => the clock must advance >= 0.5 s.
  std::vector<Item> items;
  for (int i = 0; i < 8000; ++i) {
    items.push_back(MakeItem("k" + std::to_string(i), "r", {{"u", {"v"}}}));
  }
  ASSERT_TRUE(db_.BatchPut(agent_, "t", items).ok());
  EXPECT_GE(agent_.now(), kMicrosPerSecond / 2);
  EXPECT_DOUBLE_EQ(meter_.usage().ddb_write_units, 500.0);
}

TEST_F(DynamoDbTest, ReadUnitsProportionalToBytes) {
  std::string payload(9000, 'x');  // ~9 KB -> size/4096 read units
  const Item item = MakeItem("k", "r", {{"u", {payload}}});
  ASSERT_TRUE(db_.BatchPut(agent_, "t", {item}).ok());
  const double before = meter_.usage().ddb_read_units;
  ASSERT_TRUE(db_.Get(agent_, "t", "k").ok());
  EXPECT_DOUBLE_EQ(meter_.usage().ddb_read_units - before,
                   static_cast<double>(item.SizeBytes()) / 4096.0);
}

TEST_F(DynamoDbTest, BatchGetMergesAndBatches) {
  std::vector<std::string> keys;
  for (int i = 0; i < 150; ++i) {
    const std::string key = "k" + std::to_string(i);
    keys.push_back(key);
    ASSERT_TRUE(
        db_.BatchPut(agent_, "t", {MakeItem(key, "r", {{"u", {"v"}}})}).ok());
  }
  const auto before = meter_.usage().ddb_get_requests;
  auto items = db_.BatchGet(agent_, "t", keys);
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(items.value().size(), 150u);
  EXPECT_EQ(meter_.usage().ddb_get_requests - before, 2u);  // 100 + 50
}

TEST_F(DynamoDbTest, StorageOverheadPerItem) {
  ASSERT_TRUE(db_.BatchPut(agent_, "t",
                           {MakeItem("k", "r1", {{"u", {"v"}}}),
                            MakeItem("k", "r2", {{"u", {"v"}}})})
                  .ok());
  EXPECT_EQ(db_.OverheadBytes("t"), 2 * DynamoDb::kItemOverheadBytes);
  EXPECT_EQ(db_.TotalOverheadBytes(), 2 * DynamoDb::kItemOverheadBytes);
}

TEST_F(DynamoDbTest, TableNames) {
  ASSERT_TRUE(db_.CreateTable(agent_, "u").ok());
  EXPECT_EQ(db_.TableNames(), (std::vector<std::string>{"t", "u"}));
  EXPECT_TRUE(db_.HasTable("t"));
  EXPECT_FALSE(db_.HasTable("x"));
}

}  // namespace
}  // namespace webdex::cloud
