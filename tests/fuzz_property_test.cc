// Randomized property suites: these tests generate queries, documents
// and byte strings from seeded RNGs and check the library's global
// invariants — soundness of every index look-up, parser totality (parse
// or fail cleanly, never crash or hang), codec round trips.

#include <gtest/gtest.h>

#include <set>

#include "cloud/cloud_env.h"
#include "common/rng.h"
#include "index/entry.h"
#include "index/strategy.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/xquery.h"
#include "xmark/xmark_generator.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace webdex {
namespace {

// --- Random tree-pattern generation -----------------------------------------

/// Labels that actually occur in the XMark corpus, plus a few that never
/// do (so some random patterns are unsatisfiable).
const char* kLabels[] = {"site",     "regions", "item",    "name",
                         "person",   "address", "city",    "open_auction",
                         "reserve",  "seller",  "mailbox", "mail",
                         "description", "payment", "nothere", "bogus"};
const char* kWords[] = {"the", "gold", "garden", "gossamer", "zzz"};

std::string RandomPattern(Rng& rng, int max_nodes) {
  // Builds a random pattern in the textual syntax, recursively.
  std::function<std::string(int*, int)> node = [&](int* budget,
                                                   int depth) -> std::string {
    --*budget;
    std::string out(kLabels[rng.NextBelow(std::size(kLabels))]);
    const double p = rng.NextDouble();
    if (p < 0.15) {
      out += "~'" + std::string(kWords[rng.NextBelow(std::size(kWords))]) +
             "'";
    } else if (p < 0.25) {
      out += "='" + std::string(kWords[rng.NextBelow(std::size(kWords))]) +
             "'";
    } else if (p < 0.3) {
      out += " in(1,5000]";
    }
    if (*budget > 0 && depth < 3 && rng.NextBool(0.7)) {
      const int children =
          1 + static_cast<int>(rng.NextBelow(
                  std::min<uint64_t>(2, static_cast<uint64_t>(*budget))));
      out += "[";
      for (int c = 0; c < children && *budget > 0; ++c) {
        if (c > 0) out += ", ";
        out += rng.NextBool(0.5) ? "/" : "//";
        out += node(budget, depth + 1);
      }
      out += "]";
    }
    return out;
  };
  int budget = max_nodes;
  return "//" + node(&budget, 0);
}

class RandomPatternSoundness : public ::testing::TestWithParam<int> {};

TEST_P(RandomPatternSoundness, EveryStrategyLookupIsSound) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);

  // A small corpus shared by all patterns of this seed.
  xmark::GeneratorConfig config;
  config.num_documents = 12;
  config.entities_per_document = 6;
  config.seed = 1000 + static_cast<uint64_t>(GetParam());
  xmark::XmarkGenerator generator(config);
  std::vector<xml::Document> docs;
  for (int i = 0; i < config.num_documents; ++i) {
    docs.push_back(generator.GenerateDom(i));
  }

  // Index under every strategy.
  cloud::CloudEnv env;
  class Agent : public cloud::SimAgent {} agent;
  for (index::StrategyKind kind : index::AllStrategyKinds()) {
    auto strategy = index::IndexingStrategy::Create(kind);
    for (const auto& table : strategy->TableNames()) {
      ASSERT_TRUE(env.dynamodb().CreateTable(agent, table).ok());
    }
    for (const auto& doc : docs) {
      index::ExtractStats stats;
      auto items = strategy->ExtractItems(doc, {}, env.dynamodb(),
                                          env.rng(), &stats);
      ASSERT_TRUE(items.ok());
      for (const auto& batch : items.value()) {
        ASSERT_TRUE(
            env.dynamodb().BatchPut(agent, batch.table, batch.items).ok());
      }
    }
  }

  for (int trial = 0; trial < 12; ++trial) {
    const std::string text = RandomPattern(rng, 5);
    auto query = query::ParseQuery(text);
    ASSERT_TRUE(query.ok()) << text << ": " << query.status().ToString();
    const query::TreePattern& pattern = query.value().patterns()[0];

    std::set<std::string> truth;
    for (const auto& doc : docs) {
      if (query::Evaluator::Matches(pattern, doc)) truth.insert(doc.uri());
    }
    for (index::StrategyKind kind : index::AllStrategyKinds()) {
      auto strategy = index::IndexingStrategy::Create(kind);
      index::LookupStats stats;
      auto uris = strategy->LookupPattern(agent, env.dynamodb(), pattern,
                                          {}, &stats);
      ASSERT_TRUE(uris.ok()) << text;
      const std::set<std::string> retrieved(uris.value().begin(),
                                            uris.value().end());
      for (const auto& uri : truth) {
        EXPECT_TRUE(retrieved.count(uri))
            << index::StrategyKindName(kind) << " missed " << uri
            << " for pattern " << text;
      }
    }
    // And the twig-exactness relation: LUI == 2LUPI always.
    auto lui = index::IndexingStrategy::Create(index::StrategyKind::kLUI);
    auto two = index::IndexingStrategy::Create(index::StrategyKind::k2LUPI);
    index::LookupStats s1, s2;
    auto lui_uris =
        lui->LookupPattern(agent, env.dynamodb(), pattern, {}, &s1);
    auto two_uris =
        two->LookupPattern(agent, env.dynamodb(), pattern, {}, &s2);
    ASSERT_TRUE(lui_uris.ok() && two_uris.ok());
    EXPECT_EQ(lui_uris.value(), two_uris.value()) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPatternSoundness,
                         ::testing::Range(0, 6));

// --- Random patterns always render and re-parse -----------------------------

class RandomPatternRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RandomPatternRoundTrip, ToStringAndXQueryAreStable) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string text = RandomPattern(rng, 6);
    auto query = query::ParseQuery(text);
    ASSERT_TRUE(query.ok()) << text;
    const std::string rendered = query.value().ToString();
    auto reparsed = query::ParseQuery(rendered);
    ASSERT_TRUE(reparsed.ok()) << rendered;
    EXPECT_EQ(reparsed.value().ToString(), rendered);
    // The XQuery translation must always produce a for + return.
    const std::string xq = query::ToXQuery(query.value());
    EXPECT_NE(xq.find("for "), std::string::npos);
    EXPECT_NE(xq.find("return <row>"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPatternRoundTrip,
                         ::testing::Range(0, 4));

// --- Parser totality ----------------------------------------------------------

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, RandomBytesNeverCrashTheXmlParser) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 1);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t length = rng.NextBelow(200);
    std::string input;
    for (size_t i = 0; i < length; ++i) {
      input.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    // Must return, with either a document or a clean error.
    auto doc = xml::ParseDocument("fuzz", input);
    if (doc.ok()) {
      // Whatever parsed must serialize and re-parse to the same form.
      const std::string once = xml::Serialize(doc.value().root());
      auto again = xml::ParseDocument("fuzz2", once);
      ASSERT_TRUE(again.ok()) << once;
      EXPECT_EQ(xml::Serialize(again.value().root()), once);
    }
  }
}

TEST_P(ParserFuzz, MutatedXmarkDocumentsParseOrFailCleanly) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 99);
  xmark::GeneratorConfig config;
  config.num_documents = 2;
  config.entities_per_document = 4;
  xmark::XmarkGenerator generator(config);
  const std::string base = generator.Generate(GetParam() % 2).text;
  for (int trial = 0; trial < 100; ++trial) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng.NextBelow(4));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.NextBelow(mutated.size());
      switch (rng.NextBelow(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.NextBelow(256));
          break;
        case 1:
          mutated.erase(pos, rng.NextBelow(8) + 1);
          break;
        default:
          mutated.insert(pos, "<");
          break;
      }
    }
    (void)xml::ParseDocument("mutated", mutated);  // must not crash/hang
  }
}

TEST_P(ParserFuzz, RandomBytesNeverCrashTheQueryParser) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 65537 + 3);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t length = rng.NextBelow(80);
    std::string input;
    for (size_t i = 0; i < length; ++i) {
      // Bias toward the query alphabet so some inputs get deep.
      static const char kAlphabet[] = "//[]@:val'~=#,; abcin(1)";
      input.push_back(rng.NextBool(0.8)
                          ? kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)]
                          : static_cast<char>(rng.NextBelow(256)));
    }
    auto query = query::ParseQuery(input);
    if (query.ok()) {
      auto reparsed = query::ParseQuery(query.value().ToString());
      EXPECT_TRUE(reparsed.ok()) << query.value().ToString();
    }
  }
}

TEST_P(ParserFuzz, RandomBlobsNeverCrashTheCodecs) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 17 + 23);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t length = rng.NextBelow(64);
    std::string blob;
    for (size_t i = 0; i < length; ++i) {
      blob.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    (void)index::DecodeIds(blob);
    (void)index::DecodePaths(blob);
    (void)index::HexDearmour(blob);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 4));

}  // namespace
}  // namespace webdex
