#include <gtest/gtest.h>

#include "common/strings.h"
#include "common/varint.h"
#include "index/entry.h"
#include "index/keys.h"
#include "xml/parser.h"

namespace webdex::index {
namespace {

xml::Document Doc(const std::string& text) {
  auto doc = xml::ParseDocument("delacroix.xml", text);
  EXPECT_TRUE(doc.ok());
  return std::move(doc).value();
}

const char* kDelacroix =
    "<painting id=\"1854-1\">"
    "<name>The Lion Hunt</name>"
    "<painter><name><first>Eugene</first><last>Delacroix</last></name>"
    "</painter></painting>";

// --- key(n) ------------------------------------------------------------------

TEST(KeysTest, EncodingMatchesPaperSection5) {
  EXPECT_EQ(ElementKey("painting"), "epainting");
  EXPECT_EQ(AttributeNameKey("id"), "aid");
  EXPECT_EQ(AttributeValueKey("id", "1863-1"), "aid 1863-1");
  EXPECT_EQ(WordKey("olympia"), "wolympia");
}

TEST(KeysTest, PathComponentEscapesSlashes) {
  EXPECT_EQ(PathComponent("aid a/b%c"), "aid a%2Fb%25c");
  const auto components = SplitPath("/epainting/aid a%2Fb%25c");
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], "epainting");
  EXPECT_EQ(components[1], "aid a/b%c");
}

TEST(KeysTest, SplitPathPlain) {
  const auto components = SplitPath("/esite/eitem/ename");
  EXPECT_EQ(components,
            (std::vector<std::string>{"esite", "eitem", "ename"}));
}

// --- Extraction --------------------------------------------------------------

TEST(ExtractTest, ElementKeysWithPaths) {
  const DocIndex index = ExtractDocIndex(Doc(kDelacroix));
  const DocIndex::Entry* entry = index.Find("ename");
  ASSERT_NE(entry, nullptr);
  // Two name elements: painting/name and painting/painter/name.
  EXPECT_EQ(entry->id_count, 2u);
  EXPECT_EQ(index.PathVector(*entry),
            (std::vector<std::string>{
                "/epainting/ename", "/epainting/epainter/ename"}));
}

TEST(ExtractTest, AttributesYieldTwoKeys) {
  const DocIndex index = ExtractDocIndex(Doc(kDelacroix));
  const DocIndex::Entry* name_entry = index.Find("aid");
  const DocIndex::Entry* value_entry = index.Find("aid 1854-1");
  ASSERT_NE(name_entry, nullptr);
  ASSERT_NE(value_entry, nullptr);
  EXPECT_EQ(index.PathVector(*name_entry),
            (std::vector<std::string>{"/epainting/aid"}));
  EXPECT_EQ(index.PathVector(*value_entry),
            (std::vector<std::string>{"/epainting/aid 1854-1"}));
  // Both keys carry the same structural ID (the attribute's).
  EXPECT_EQ(index.IdVector(*name_entry), index.IdVector(*value_entry));
}

TEST(ExtractTest, WordsLowercasedWithElementPath) {
  const DocIndex index = ExtractDocIndex(Doc(kDelacroix));
  const DocIndex::Entry* entry = index.Find("wlion");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(index.PathVector(*entry),
            (std::vector<std::string>{"/epainting/ename/wlion"}));
  EXPECT_FALSE(index.Contains("wLion"));
}

TEST(ExtractTest, WordIdsAreChildrenOfTheirElement) {
  const xml::Document doc = Doc(kDelacroix);
  const DocIndex index = ExtractDocIndex(doc);
  const xml::NodeId word_id = index.ids(*index.Find("wlion"))[0];
  // The painting/name element.
  const xml::NodeId name_id = index.ids(*index.Find("ename"))[0];
  EXPECT_TRUE(name_id.IsParentOf(word_id));
}

TEST(ExtractTest, AttributeValueWordsShareAttributeId) {
  const DocIndex index = ExtractDocIndex(Doc(kDelacroix));
  // "1854-1" tokenizes into words "1854" and "1".
  const DocIndex::Entry* word_entry = index.Find("w1854");
  ASSERT_NE(word_entry, nullptr);
  EXPECT_EQ(index.IdVector(*word_entry), index.IdVector(*index.Find("aid")));
  EXPECT_EQ(index.PathVector(*word_entry),
            (std::vector<std::string>{"/epainting/aid/w1854"}));
}

TEST(ExtractTest, WithoutWordsNoWordKeys) {
  ExtractOptions options;
  options.include_words = false;
  const DocIndex index = ExtractDocIndex(Doc(kDelacroix), options);
  EXPECT_FALSE(index.Contains("wlion"));
  EXPECT_TRUE(index.Contains("ename"));
  // Valued attribute keys remain (they are not full-text keys).
  EXPECT_TRUE(index.Contains("aid 1854-1"));
}

TEST(ExtractTest, IdsSortedByPre) {
  const DocIndex index =
      ExtractDocIndex(Doc("<r><a>x</a><b/><a>y</a><a/></r>"));
  const std::vector<xml::NodeId> ids = index.IdVector(*index.Find("ea"));
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_LT(ids[0].pre, ids[1].pre);
  EXPECT_LT(ids[1].pre, ids[2].pre);
}

TEST(ExtractTest, RepeatedWordDeduplicatedPerOccurrenceSlot) {
  const DocIndex index = ExtractDocIndex(Doc("<a>go go go</a>"));
  // Three occurrences in one text node share the text node's ID, so the
  // entry holds a single ID.
  EXPECT_EQ(index.Find("wgo")->id_count, 1u);
}

TEST(ExtractTest, StatsCountKeysIdsPathBytes) {
  const DocIndex index = ExtractDocIndex(Doc(kDelacroix));
  const DocIndexStats stats = ComputeStats(index);
  EXPECT_EQ(stats.keys, index.size());
  EXPECT_GT(stats.ids, 10u);
  EXPECT_GT(stats.path_bytes, 100u);
}

// --- ID codec ----------------------------------------------------------------

TEST(IdCodecTest, RoundTrip) {
  std::vector<xml::NodeId> ids{{1, 9, 1}, {2, 3, 2}, {300, 70000, 5}};
  auto decoded = DecodeIds(EncodeIds(ids));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), ids);
}

TEST(IdCodecTest, EmptyBlob) {
  auto decoded = DecodeIds("");
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(IdCodecTest, TruncatedBlobFails) {
  std::vector<xml::NodeId> ids{{70000, 70000, 9}};
  std::string blob = EncodeIds(ids);
  blob.resize(blob.size() - 1);
  EXPECT_TRUE(DecodeIds(blob).status().IsCorruption());
}

TEST(IdCodecTest, CompactForSmallIds) {
  std::vector<xml::NodeId> ids{{1, 2, 3}};
  EXPECT_EQ(EncodeIds(ids).size(), 3u);  // one byte per component
}

TEST(HexArmourTest, RoundTripBinary) {
  std::string binary("\x00\x7f\xff\x10", 4);
  const std::string hex = HexArmour(binary);
  EXPECT_EQ(hex, "007fff10");
  auto back = HexDearmour(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), binary);
}

TEST(HexArmourTest, RejectsMalformed) {
  EXPECT_TRUE(HexDearmour("abc").status().IsCorruption());   // odd length
  EXPECT_TRUE(HexDearmour("zz").status().IsCorruption());    // bad digit
}

// --- Front-coded path sets (Section 8.5 extension) ---------------------------

TEST(PathCodecTest, RoundTripSortedPaths) {
  const std::vector<std::string> paths{
      "/esite/eregions/eafrica/eitem/edescription",
      "/esite/eregions/eafrica/eitem/ename",
      "/esite/eregions/easia/eitem/ename",
  };
  auto decoded = DecodePaths(EncodePaths(paths));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), paths);
}

TEST(PathCodecTest, EmptyAndSingleton) {
  EXPECT_TRUE(EncodePaths({}).empty());
  auto empty = DecodePaths("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
  auto single = DecodePaths(EncodePaths({"/ea/eb"}));
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single.value(), std::vector<std::string>{"/ea/eb"});
}

TEST(PathCodecTest, SharedPrefixesActuallyCompress) {
  std::vector<std::string> paths;
  for (int i = 0; i < 50; ++i) {
    paths.push_back(
        StrFormat("/esite/eregions/eitem/emailbox/email/ekey%02d", i));
  }
  size_t plain = 0;
  for (const auto& path : paths) plain += path.size();
  EXPECT_LT(EncodePaths(paths).size(), plain / 3);
}

TEST(PathCodecTest, CorruptionDetected) {
  const std::string blob = EncodePaths({"/ea/eb", "/ea/ec"});
  EXPECT_TRUE(DecodePaths(blob.substr(0, blob.size() - 1))
                  .status()
                  .IsCorruption());
  // A shared-prefix claim longer than the predecessor is rejected.
  std::string forged;
  PutVarint64(&forged, 7);  // prefix of 7 from an empty predecessor
  PutVarint64(&forged, 1);
  forged += "x";
  EXPECT_TRUE(DecodePaths(forged).status().IsCorruption());
}

TEST(PathCodecTest, RealExtractionRoundTrips) {
  const DocIndex index = ExtractDocIndex(Doc(kDelacroix));
  for (const auto& entry : index.entries()) {
    const std::vector<std::string> paths = index.PathVector(entry);
    auto decoded = DecodePaths(EncodePaths(paths));
    ASSERT_TRUE(decoded.ok()) << index.key(entry);
    EXPECT_EQ(decoded.value(), paths) << index.key(entry);
  }
}

}  // namespace
}  // namespace webdex::index
