#include <gtest/gtest.h>

#include "index/path_match.h"
#include "query/parser.h"

namespace webdex::index {
namespace {

QueryPath MakePath(std::initializer_list<QueryPathStep> steps) {
  QueryPath path;
  path.steps = steps;
  return path;
}

constexpr TwigAxis kChild = TwigAxis::kChild;
constexpr TwigAxis kDesc = TwigAxis::kDescendant;

TEST(PathMatchTest, ExactChildChain) {
  const QueryPath q = MakePath({{kDesc, "ea"}, {kChild, "eb"}});
  EXPECT_TRUE(PathMatches(q, "/ea/eb"));
  EXPECT_TRUE(PathMatches(q, "/er/ea/eb"));
  EXPECT_FALSE(PathMatches(q, "/ea/ex/eb"));  // child gap
  EXPECT_FALSE(PathMatches(q, "/eb"));
}

TEST(PathMatchTest, DescendantGaps) {
  const QueryPath q = MakePath({{kDesc, "ea"}, {kDesc, "eb"}});
  EXPECT_TRUE(PathMatches(q, "/ea/eb"));
  EXPECT_TRUE(PathMatches(q, "/ea/ex/ey/eb"));
  EXPECT_FALSE(PathMatches(q, "/eb/ea"));
}

TEST(PathMatchTest, RootAnchoredChildAxis) {
  const QueryPath q = MakePath({{kChild, "ea"}, {kChild, "eb"}});
  EXPECT_TRUE(PathMatches(q, "/ea/eb"));
  EXPECT_FALSE(PathMatches(q, "/er/ea/eb"));  // 'ea' must be the root
}

TEST(PathMatchTest, LastStepMustBeLastComponent) {
  const QueryPath q = MakePath({{kDesc, "ea"}});
  EXPECT_TRUE(PathMatches(q, "/ea"));
  EXPECT_TRUE(PathMatches(q, "/er/ea"));
  EXPECT_FALSE(PathMatches(q, "/ea/eb"));
}

TEST(PathMatchTest, RepeatedLabels) {
  // //a/a must find two consecutive a's.
  const QueryPath q = MakePath({{kDesc, "ea"}, {kChild, "ea"}});
  EXPECT_TRUE(PathMatches(q, "/ea/ea"));
  EXPECT_TRUE(PathMatches(q, "/er/ea/ea"));
  EXPECT_FALSE(PathMatches(q, "/ea/eb/ea"));
  EXPECT_TRUE(PathMatches(q, "/ea/eb/ea/ea"));  // backtracking required
}

TEST(PathMatchTest, EmptyInputs) {
  EXPECT_FALSE(PathMatches(MakePath({}), "/ea"));
  EXPECT_FALSE(
      PathMatches(MakePath({{kDesc, "ea"}}), std::vector<std::string>{}));
}

TEST(PathMatchTest, PaperQ1Paths) {
  // Section 5.2's example: //epainting/ename and
  // //epainting//epainter/ename.
  const QueryPath name_path =
      MakePath({{kDesc, "epainting"}, {kChild, "ename"}});
  const QueryPath painter_path = MakePath(
      {{kDesc, "epainting"}, {kDesc, "epainter"}, {kChild, "ename"}});
  EXPECT_TRUE(PathMatches(name_path, "/epainting/ename"));
  EXPECT_FALSE(PathMatches(name_path, "/epainting/epainter/ename"));
  EXPECT_TRUE(PathMatches(painter_path, "/epainting/epainter/ename"));
  EXPECT_FALSE(PathMatches(painter_path, "/epainting/ename"));
}

TEST(PathMatchTest, BuildQueryPathsFromPattern) {
  auto query = query::ParseQuery(
      "//painting[/name~'Lion', //painter/name/last]");
  ASSERT_TRUE(query.ok());
  const KeyTwig twig = BuildKeyTwig(query.value().patterns()[0]);
  const auto paths = BuildQueryPaths(twig);
  ASSERT_EQ(paths.size(), 2u);
  // First branch extends through the containment word.
  EXPECT_EQ(paths[0].ToString(), "//epainting/ename//wlion");
  EXPECT_EQ(paths[0].LookupKey(), "wlion");
  EXPECT_EQ(paths[1].ToString(),
            "//epainting//epainter/ename/elast");
}

TEST(PathMatchTest, AttributeEqualityUsesValuedKeyInPath) {
  auto query = query::ParseQuery("//painting/@id='1863-1'");
  ASSERT_TRUE(query.ok());
  const KeyTwig twig = BuildKeyTwig(query.value().patterns()[0]);
  const auto paths = BuildQueryPaths(twig);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].LookupKey(), "aid 1863-1");
  EXPECT_TRUE(PathMatches(paths[0], "/epainting/aid 1863-1"));
}

TEST(PathMatchTest, SelfAxisWordRendersAsChildStep) {
  auto query = query::ParseQuery("//item/@id~'47'");
  ASSERT_TRUE(query.ok());
  const KeyTwig twig = BuildKeyTwig(query.value().patterns()[0]);
  const auto paths = BuildQueryPaths(twig);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].steps.back().key, "w47");
  EXPECT_EQ(paths[0].steps.back().axis, TwigAxis::kChild);
  EXPECT_TRUE(PathMatches(paths[0], "/esite/eitem/aid/w47"));
}

}  // namespace
}  // namespace webdex::index
