// Determinism contract of the host-parallel extraction pipeline: the
// number of host threads is a pure wall-clock knob.  Virtual makespans,
// per-phase timings, extract stats, billing units, simulated dollars and
// the byte-for-byte contents of the index tables must be identical for
// host_threads == 1 (legacy serial path) and host_threads == 8
// (speculative pipeline), across all four strategies, with and without
// crash-injection redeliveries.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "engine/extraction_pipeline.h"
#include "engine/warehouse.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "xmark/paintings.h"
#include "xmark/xmark_generator.h"
#include "xml/parser.h"

namespace webdex::engine {
namespace {

using index::StrategyKind;

std::vector<xmark::GeneratedDocument> Corpus() {
  auto docs = xmark::GeneratePaintings();
  xmark::GeneratorConfig config;
  config.num_documents = 12;
  config.entities_per_document = 8;
  for (auto& doc : xmark::XmarkGenerator(config).GenerateAll()) {
    docs.push_back(std::move(doc));
  }
  return docs;
}

/// Everything that must not depend on host_threads.
struct RunFingerprint {
  IndexingRunReport report;
  std::vector<std::string> table_dump;  // canonical item serialization
  double dollars = 0;
};

RunFingerprint RunIndexing(WarehouseConfig config, int crashes = 0) {
  RunFingerprint out;
  int crashes_remaining = crashes;
  if (crashes > 0) {
    config.crash_plan = [&crashes_remaining](cloud::CrashPoint point, int,
                                             const std::string&) {
      if (point == cloud::CrashPoint::kBeforeDelete &&
          crashes_remaining > 0) {
        --crashes_remaining;
        return true;
      }
      return false;
    };
  }
  auto env = std::make_unique<cloud::CloudEnv>();
  Warehouse warehouse(env.get(), config);
  EXPECT_TRUE(warehouse.Setup().ok());
  for (const auto& doc : Corpus()) {
    EXPECT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
  }
  auto report = warehouse.RunIndexers();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  out.report = report.value();
  warehouse.index_store().ForEachItem(
      [&out](const std::string& table, const cloud::Item& item) {
        std::string line = table + "|" + item.hash_key + "|" + item.range_key;
        for (const auto& [name, values] : item.attrs) {
          line += "|" + name + "=";
          for (const auto& value : values) line += value + ",";
        }
        out.table_dump.push_back(std::move(line));
      });
  out.dollars = env->meter().ComputeBill().total();
  return out;
}

void ExpectIdentical(const RunFingerprint& serial,
                     const RunFingerprint& parallel) {
  EXPECT_EQ(serial.report.documents, parallel.report.documents);
  EXPECT_EQ(serial.report.extraction_micros, parallel.report.extraction_micros);
  EXPECT_EQ(serial.report.upload_micros, parallel.report.upload_micros);
  EXPECT_EQ(serial.report.makespan, parallel.report.makespan);
  EXPECT_EQ(serial.report.extract_stats.entries,
            parallel.report.extract_stats.entries);
  EXPECT_EQ(serial.report.extract_stats.items,
            parallel.report.extract_stats.items);
  EXPECT_EQ(serial.report.extract_stats.payload_bytes,
            parallel.report.extract_stats.payload_bytes);
  EXPECT_DOUBLE_EQ(serial.report.index_put_units,
                   parallel.report.index_put_units);
  EXPECT_DOUBLE_EQ(serial.dollars, parallel.dollars);
  ASSERT_EQ(serial.table_dump.size(), parallel.table_dump.size());
  EXPECT_EQ(serial.table_dump, parallel.table_dump);
}

class PipelineDeterminismTest
    : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(PipelineDeterminismTest, SerialAndParallelRunsAreBitIdentical) {
  WarehouseConfig config;
  config.strategy = GetParam();
  config.num_instances = 3;
  WarehouseConfig serial = config;
  serial.host_threads = 1;
  WarehouseConfig parallel = config;
  parallel.host_threads = 8;
  ExpectIdentical(RunIndexing(serial), RunIndexing(parallel));
}

TEST_P(PipelineDeterminismTest, IdenticalUnderCrashRedeliveries) {
  WarehouseConfig config;
  config.strategy = GetParam();
  config.num_instances = 2;
  WarehouseConfig serial = config;
  serial.host_threads = 1;
  WarehouseConfig parallel = config;
  parallel.host_threads = 8;
  const auto serial_run = RunIndexing(serial, /*crashes=*/3);
  const auto parallel_run = RunIndexing(parallel, /*crashes=*/3);
  EXPECT_EQ(serial_run.report.documents, Corpus().size() + 3);
  ExpectIdentical(serial_run, parallel_run);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, PipelineDeterminismTest,
    ::testing::ValuesIn(index::AllStrategyKinds()),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
      return std::string(index::StrategyKindName(info.param));
    });

// Redelivered tasks re-extract to byte-identical items (UUID range keys
// are seeded per document URI), so crash replays *replace* rather than
// duplicate index items: the surviving tables equal a crash-free run's.
TEST(PipelineTest, CrashReplayIsIdempotentOnTableContents) {
  WarehouseConfig config;
  config.strategy = StrategyKind::kLUP;
  config.num_instances = 2;
  const auto clean = RunIndexing(config);
  const auto crashed = RunIndexing(config, /*crashes=*/3);
  EXPECT_EQ(clean.table_dump, crashed.table_dump);
  // The redone work is still billed: more put units, more dollars.
  EXPECT_GT(crashed.report.index_put_units, clean.report.index_put_units);
}

// Querying after a pipelined indexing run returns the same rows as after
// a serial one (the index contents being identical, it must).
TEST(PipelineTest, QueriesAgreeAfterSerialAndParallelIndexing) {
  const char* query =
      "//painting[/name~'Lion', //painter/name/last:val]";
  auto run = [&](int host_threads) {
    WarehouseConfig config;
    config.strategy = StrategyKind::k2LUPI;
    config.host_threads = host_threads;
    auto env = std::make_unique<cloud::CloudEnv>();
    Warehouse warehouse(env.get(), config);
    EXPECT_TRUE(warehouse.Setup().ok());
    for (const auto& doc : Corpus()) {
      EXPECT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
    }
    EXPECT_TRUE(warehouse.RunIndexers().ok());
    auto outcome = warehouse.ExecuteQuery(query);
    EXPECT_TRUE(outcome.ok());
    return std::make_pair(outcome.value().result.rows,
                          outcome.value().timings.total);
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
  ASSERT_FALSE(serial.first.empty());
  EXPECT_EQ(serial.first[0][0], "Delacroix");
}

// The evaluator's thread_local work-stats contract (query/evaluator.h):
// stats are only visible on the producing thread.
TEST(PipelineTest, EvaluatorWorkStatsStayOnProducingThread) {
  auto doc = xml::ParseDocument(
      "t.xml", "<a><b>one</b><b>two</b></a>");
  ASSERT_TRUE(doc.ok());
  auto parsed = query::ParseQuery("//b:val");
  ASSERT_TRUE(parsed.ok());
  const query::TreePattern& pattern = parsed.value().patterns()[0];

  (void)query::Evaluator::ConsumeWorkStats();
  query::Evaluator::WorkStats worker_stats;
  bool worker_pending = false;
  std::thread worker([&] {
    (void)query::Evaluator::ConsumeWorkStats();
    auto matches = query::Evaluator::MatchPattern(pattern, doc.value());
    EXPECT_EQ(matches.size(), 2u);
    worker_pending = query::Evaluator::HasPendingWorkStats();
    worker_stats = query::Evaluator::ConsumeWorkStats();
  });
  worker.join();
  // The producing thread saw and consumed its own stats...
  EXPECT_TRUE(worker_pending);
  EXPECT_GT(worker_stats.doc_bytes_scanned, 0u);
  EXPECT_EQ(worker_stats.embeddings_found, 2u);
  // ...while this thread's stats stayed untouched: consuming here after
  // cross-thread work yields nothing.
  EXPECT_FALSE(query::Evaluator::HasPendingWorkStats());
  const auto main_stats = query::Evaluator::ConsumeWorkStats();
  EXPECT_EQ(main_stats.doc_bytes_scanned, 0u);
  EXPECT_EQ(main_stats.embeddings_found, 0u);
}

}  // namespace
}  // namespace webdex::engine
