#include <gtest/gtest.h>

#include <vector>

#include "common/strings.h"
#include "xml/parser.h"
#include "xml/tokenizer.h"
#include "xmark/xmark_generator.h"

namespace webdex::xml {
namespace {

TEST(NodeIdTest, AncestorAndParentPredicates) {
  // Manually build: a(1,3,1) > b(2,1,2); a > c(3,2,2).
  NodeId a{1, 3, 1}, b{2, 1, 2}, c{3, 2, 2};
  EXPECT_TRUE(a.IsAncestorOf(b));
  EXPECT_TRUE(a.IsParentOf(b));
  EXPECT_TRUE(a.IsAncestorOf(c));
  EXPECT_FALSE(b.IsAncestorOf(c));
  EXPECT_FALSE(b.IsAncestorOf(a));
  NodeId grandchild{2, 1, 3};
  EXPECT_TRUE(a.IsAncestorOf(grandchild));
  EXPECT_FALSE(a.IsParentOf(grandchild));
}

TEST(NodeIdTest, OrderingByPre) {
  NodeId a{1, 5, 1}, b{2, 1, 2};
  EXPECT_LT(a, b);
  EXPECT_EQ(a.ToString(), "(1, 5, 1)");
}

TEST(DomTest, StringValueConcatenatesTextDescendants) {
  auto doc = ParseDocument("t", "<a>x<b>y<c>z</c></b>w</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root().StringValue(), "xyzw");
}

TEST(DomTest, StringValueExcludesAttributes) {
  auto doc = ParseDocument("t", "<a id=\"skip\">x</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root().StringValue(), "x");
}

TEST(DomTest, SubtreeSizeCountsAllNodes) {
  auto doc = ParseDocument("t", "<a id=\"1\"><b>x</b></a>");
  ASSERT_TRUE(doc.ok());
  // a + @id + b + text = 4.
  EXPECT_EQ(doc.value().root().SubtreeSize(), 4u);
}

TEST(DomTest, ForEachNodeVisitsInDocumentOrder) {
  auto doc = ParseDocument("t", "<a><b/><c><d/></c></a>");
  ASSERT_TRUE(doc.ok());
  std::vector<std::string> labels;
  ForEachNode(doc.value().root(), [&](const Node& node) {
    labels.push_back(node.label());
  });
  EXPECT_EQ(labels, (std::vector<std::string>{"a", "b", "c", "d"}));
}

// Structural-ID invariant checks: for every pair of nodes in a document,
// the (pre, post, depth) predicates must agree with the actual tree.
void CollectWithAncestry(const Node& node, std::vector<const Node*>* flat) {
  flat->push_back(&node);
  for (const auto& child : node.children()) {
    CollectWithAncestry(*child, flat);
  }
}

bool ReallyAncestor(const Node* maybe_ancestor, const Node* node) {
  for (const Node* p = node->parent(); p != nullptr; p = p->parent()) {
    if (p == maybe_ancestor) return true;
  }
  return false;
}

class IdInvariants : public ::testing::TestWithParam<int> {};

TEST_P(IdInvariants, PrePostDepthAgreeWithTree) {
  xmark::GeneratorConfig config;
  config.num_documents = 20;
  config.entities_per_document = 6;
  xmark::XmarkGenerator generator(config);
  Document doc = generator.GenerateDom(GetParam());

  std::vector<const Node*> nodes;
  CollectWithAncestry(doc.root(), &nodes);
  ASSERT_GT(nodes.size(), 10u);

  // Pre values are unique and in document order.
  for (size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i - 1]->id().pre, nodes[i]->id().pre);
  }
  // Pairwise agreement on a bounded sample (full quadratic check is slow).
  const size_t step = nodes.size() > 400 ? nodes.size() / 400 : 1;
  for (size_t i = 0; i < nodes.size(); i += step) {
    for (size_t j = 0; j < nodes.size(); j += step) {
      if (i == j) continue;
      const bool claimed = nodes[i]->id().IsAncestorOf(nodes[j]->id());
      const bool actual = ReallyAncestor(nodes[i], nodes[j]);
      EXPECT_EQ(claimed, actual)
          << nodes[i]->label() << nodes[i]->id().ToString() << " vs "
          << nodes[j]->label() << nodes[j]->id().ToString();
      if (claimed) {
        EXPECT_EQ(nodes[i]->id().IsParentOf(nodes[j]->id()),
                  nodes[j]->parent() == nodes[i]);
      }
    }
  }
  // Depth equals real tree depth.
  for (const Node* node : nodes) {
    uint32_t depth = 1;
    for (const Node* p = node->parent(); p != nullptr; p = p->parent()) {
      ++depth;
    }
    EXPECT_EQ(node->id().depth, depth);
  }
}

INSTANTIATE_TEST_SUITE_P(Docs, IdInvariants, ::testing::Range(0, 10));

// --- Tokenizer ---------------------------------------------------------------

TEST(TokenizerTest, SplitsOnNonAlnumAndLowercases) {
  EXPECT_EQ(TokenizeWords("The Lion-Hunt, 1854!"),
            (std::vector<std::string>{"the", "lion", "hunt", "1854"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(TokenizeWords("").empty());
  EXPECT_TRUE(TokenizeWords("... --- !!!").empty());
}

TEST(TokenizerTest, NormalizeWordStripsAndLowercases) {
  EXPECT_EQ(NormalizeWord("Lion!"), "lion");
  EXPECT_EQ(NormalizeWord("1854"), "1854");
  EXPECT_EQ(NormalizeWord("--"), "");
}

TEST(TokenizerTest, ConsistentWithContainsWordPredicate) {
  // Every token of a text must satisfy contains(token) on that text —
  // the invariant that lets the word index answer containment look-ups.
  const std::string text = "A striking oil on canvas, painted in 1863.";
  for (const auto& word : TokenizeWords(text)) {
    EXPECT_TRUE(ContainsWord(text, word)) << word;
  }
}

}  // namespace
}  // namespace webdex::xml
