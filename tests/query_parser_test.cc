#include <gtest/gtest.h>

#include "query/parser.h"

namespace webdex::query {
namespace {

Query MustParse(std::string_view text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << text << " -> " << q.status().ToString();
  return std::move(q).value();
}

TEST(QueryParserTest, SingleNode) {
  Query q = MustParse("//painting");
  ASSERT_EQ(q.patterns().size(), 1u);
  const PatternNode& root = q.patterns()[0].root();
  EXPECT_EQ(root.label, "painting");
  EXPECT_EQ(root.axis, Axis::kDescendant);
  EXPECT_FALSE(root.is_attribute);
  EXPECT_TRUE(root.children.empty());
}

TEST(QueryParserTest, RootAxisDefaultsToDescendant) {
  EXPECT_EQ(MustParse("painting").patterns()[0].root().axis,
            Axis::kDescendant);
  EXPECT_EQ(MustParse("/painting").patterns()[0].root().axis, Axis::kChild);
}

TEST(QueryParserTest, PaperQ1) {
  Query q = MustParse("//painting[/name:val, //painter/name:val]");
  const TreePattern& p = q.patterns()[0];
  ASSERT_EQ(p.size(), 4);
  const PatternNode& root = p.root();
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->label, "name");
  EXPECT_EQ(root.children[0]->axis, Axis::kChild);
  EXPECT_TRUE(root.children[0]->want_val);
  EXPECT_EQ(root.children[1]->label, "painter");
  EXPECT_EQ(root.children[1]->axis, Axis::kDescendant);
  ASSERT_EQ(root.children[1]->children.size(), 1u);
  EXPECT_TRUE(root.children[1]->children[0]->want_val);
  EXPECT_EQ(p.output_nodes().size(), 2u);
}

TEST(QueryParserTest, PaperQ2ContAndEquality) {
  Query q = MustParse("//painting[//description:cont, /year='1854']");
  const PatternNode& root = q.patterns()[0].root();
  EXPECT_TRUE(root.children[0]->want_cont);
  EXPECT_EQ(root.children[0]->axis, Axis::kDescendant);
  EXPECT_EQ(root.children[1]->predicate.kind, PredicateKind::kEquals);
  EXPECT_EQ(root.children[1]->predicate.constant, "1854");
}

TEST(QueryParserTest, PaperQ3Containment) {
  Query q = MustParse("//painting[/name~'Lion', //painter/name/last:val]");
  const PatternNode& root = q.patterns()[0].root();
  EXPECT_EQ(root.children[0]->predicate.kind, PredicateKind::kContains);
  EXPECT_EQ(root.children[0]->predicate.constant, "Lion");
  // Linear path sugar nests painter/name/last.
  EXPECT_EQ(root.children[1]->children[0]->children[0]->label, "last");
}

TEST(QueryParserTest, PaperQ4RangePredicate) {
  Query q = MustParse(
      "//painting[/name:val, /painter/name[/last='Manet'], "
      "/year in(1854,1865]]");
  const PatternNode& year = *q.patterns()[0].root().children[2];
  EXPECT_EQ(year.predicate.kind, PredicateKind::kRange);
  EXPECT_DOUBLE_EQ(year.predicate.lo, 1854);
  EXPECT_DOUBLE_EQ(year.predicate.hi, 1865);
  EXPECT_FALSE(year.predicate.lo_inclusive);
  EXPECT_TRUE(year.predicate.hi_inclusive);
  EXPECT_TRUE(q.HasRangePredicate());
  EXPECT_FALSE(q.HasValueJoins());
}

TEST(QueryParserTest, PaperQ5ValueJoin) {
  Query q = MustParse(
      "//museum[/name:val, /painting/@id#x]; "
      "//painting[/@id#y, /painter/name[/last='Delacroix']] where #x=#y");
  ASSERT_EQ(q.patterns().size(), 2u);
  ASSERT_EQ(q.joins().size(), 1u);
  const ValueJoin& join = q.joins()[0];
  EXPECT_EQ(join.left_pattern, 0);
  EXPECT_EQ(join.right_pattern, 1);
  const PatternNode* left =
      q.patterns()[0].nodes()[static_cast<size_t>(join.left_node)];
  EXPECT_TRUE(left->is_attribute);
  EXPECT_EQ(left->label, "id");
  EXPECT_EQ(left->join_tag, "x");
  EXPECT_TRUE(q.HasValueJoins());
}

TEST(QueryParserTest, AttributesAndMarkers) {
  Query q = MustParse("//item[/@id:val]");
  const PatternNode& attr = *q.patterns()[0].root().children[0];
  EXPECT_TRUE(attr.is_attribute);
  EXPECT_TRUE(attr.want_val);
}

TEST(QueryParserTest, InclusiveRangeBrackets) {
  Query q = MustParse("//price in[10,20)");
  const Predicate& pred = q.patterns()[0].root().predicate;
  EXPECT_TRUE(pred.lo_inclusive);
  EXPECT_FALSE(pred.hi_inclusive);
}

TEST(QueryParserTest, BareWordLiteral) {
  Query q = MustParse("//type=Regular");
  EXPECT_EQ(q.patterns()[0].root().predicate.constant, "Regular");
}

TEST(QueryParserTest, PathContinuationAfterBracket) {
  // XPath-style //g[/v='2']/n is sugar for //g[/v='2', /n].
  Query q = MustParse("//g[/v='2']/n:val");
  const PatternNode& root = q.patterns()[0].root();
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->label, "v");
  EXPECT_EQ(root.children[1]->label, "n");
  EXPECT_TRUE(root.children[1]->want_val);
  EXPECT_EQ(MustParse("//g[/v='2', /n:val]").ToString(), q.ToString());
}

TEST(QueryParserTest, ToStringRoundTrips) {
  const char* queries[] = {
      "//painting[/name:val, //painter/name:val]",
      "//painting[//description:cont, /year='1854']",
      "//item[/@id:val, /description~'gold']",
      "//price in(10,20]",
  };
  for (const char* text : queries) {
    Query q = MustParse(text);
    Query reparsed = MustParse(q.ToString());
    EXPECT_EQ(reparsed.ToString(), q.ToString()) << text;
  }
}

// --- Error cases -------------------------------------------------------------

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("//a[").ok());
  EXPECT_FALSE(ParseQuery("//a[b]").ok());  // child without axis
  EXPECT_FALSE(ParseQuery("//a]").ok());
  EXPECT_FALSE(ParseQuery("//a='unterminated").ok());
  EXPECT_FALSE(ParseQuery("//a in(5,1]").ok());   // inverted range
  EXPECT_FALSE(ParseQuery("//a in 1,2]").ok());   // missing bracket
  EXPECT_FALSE(ParseQuery("//a ; //b where #x=#y").ok());  // unknown tags
  EXPECT_FALSE(ParseQuery("//a#x ; //b").ok());   // dangling join tag
  EXPECT_FALSE(ParseQuery("//a//").ok());
  EXPECT_FALSE(ParseQuery("//a trailing").ok());
}

TEST(QueryParserTest, PredicateMatchesSemantics) {
  Predicate eq;
  eq.kind = PredicateKind::kEquals;
  eq.constant = "1854";
  EXPECT_TRUE(eq.Matches("1854"));
  EXPECT_TRUE(eq.Matches("  1854 "));  // trimmed
  EXPECT_FALSE(eq.Matches("18540"));

  Predicate contains;
  contains.kind = PredicateKind::kContains;
  contains.constant = "Lion";
  EXPECT_TRUE(contains.Matches("The Lion Hunt"));
  EXPECT_FALSE(contains.Matches("Lioness"));

  Predicate range;
  range.kind = PredicateKind::kRange;
  range.lo = 1854;
  range.hi = 1865;
  range.lo_inclusive = false;
  range.hi_inclusive = true;
  EXPECT_FALSE(range.Matches("1854"));
  EXPECT_TRUE(range.Matches("1855"));
  EXPECT_TRUE(range.Matches("1865"));
  EXPECT_FALSE(range.Matches("1866"));
  EXPECT_FALSE(range.Matches("not-a-number"));
  EXPECT_FALSE(range.Matches(""));
}

TEST(QueryParserTest, RootToLeafPaths) {
  Query q = MustParse("//painting[/name, //painter/name/last]");
  const auto paths = q.patterns()[0].RootToLeafPaths();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].back()->label, "name");
  EXPECT_EQ(paths[1].size(), 4u);
  EXPECT_EQ(paths[1].back()->label, "last");
}

}  // namespace
}  // namespace webdex::query
