#include <gtest/gtest.h>

#include <set>

#include "engine/warehouse.h"
#include "xmark/paintings.h"
#include "xmark/xmark_generator.h"

namespace webdex::engine {
namespace {

using index::StrategyKind;

std::vector<xmark::GeneratedDocument> Corpus() {
  auto docs = xmark::GeneratePaintings();
  xmark::GeneratorConfig config;
  config.num_documents = 15;
  config.entities_per_document = 6;
  for (auto& doc : xmark::XmarkGenerator(config).GenerateAll()) {
    docs.push_back(std::move(doc));
  }
  return docs;
}

struct Harness {
  std::unique_ptr<cloud::CloudEnv> env;
  std::unique_ptr<Warehouse> warehouse;
};

Harness MakeWarehouse(WarehouseConfig config,
                    cloud::CloudConfig cloud_config = {}) {
  Harness setup;
  setup.env = std::make_unique<cloud::CloudEnv>(cloud_config);
  setup.warehouse = std::make_unique<Warehouse>(setup.env.get(), config);
  EXPECT_TRUE(setup.warehouse->Setup().ok());
  for (const auto& doc : Corpus()) {
    EXPECT_TRUE(setup.warehouse->SubmitDocument(doc.uri, doc.text).ok());
  }
  return setup;
}

const char* kQ1 = "//painting[/name:val, //painter/name:val]";
const char* kQ3 = "//painting[/name~'Lion', //painter/name/last:val]";
const char* kQ5 =
    "//museum[/name:val, /painting/@id#x]; "
    "//painting[/@id#y, /painter/name[/last='Delacroix']] where #x=#y";

class WarehouseStrategyTest : public ::testing::TestWithParam<StrategyKind> {
};

TEST_P(WarehouseStrategyTest, EndToEndIndexAndQuery) {
  WarehouseConfig config;
  config.strategy = GetParam();
  config.num_instances = 2;
  Harness setup = MakeWarehouse(config);

  auto indexing = setup.warehouse->RunIndexers();
  ASSERT_TRUE(indexing.ok()) << indexing.status().ToString();
  EXPECT_EQ(indexing.value().documents, Corpus().size());
  EXPECT_GT(indexing.value().makespan, 0);
  EXPECT_GT(indexing.value().extract_stats.entries, 0u);
  EXPECT_GT(indexing.value().index_put_units, 0u);

  auto outcome = setup.warehouse->ExecuteQuery(kQ3);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome.value().result.rows.size(), 1u);
  EXPECT_EQ(outcome.value().result.rows[0][0], "Delacroix");
  EXPECT_GT(outcome.value().docs_fetched, 0u);
  EXPECT_LT(outcome.value().docs_fetched, Corpus().size());
  EXPECT_GT(outcome.value().timings.total, 0);
  EXPECT_GT(outcome.value().timings.index_get, 0);
}

TEST_P(WarehouseStrategyTest, MatchesNoIndexBaselineResults) {
  WarehouseConfig config;
  config.strategy = GetParam();
  Harness indexed = MakeWarehouse(config);
  ASSERT_TRUE(indexed.warehouse->RunIndexers().ok());

  WarehouseConfig baseline_config;
  baseline_config.use_index = false;
  Harness baseline = MakeWarehouse(baseline_config);

  for (const char* query : {kQ1, kQ3, kQ5}) {
    auto with_index = indexed.warehouse->ExecuteQuery(query);
    auto without = baseline.warehouse->ExecuteQuery(query);
    ASSERT_TRUE(with_index.ok()) << with_index.status().ToString();
    ASSERT_TRUE(without.ok()) << without.status().ToString();
    EXPECT_EQ(with_index.value().result.rows, without.value().result.rows)
        << query;
    EXPECT_LE(with_index.value().docs_fetched,
              without.value().docs_fetched);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, WarehouseStrategyTest,
    ::testing::ValuesIn(index::AllStrategyKinds()),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
      return std::string(index::StrategyKindName(info.param));
    });

TEST(WarehouseTest, NoIndexFetchesEverything) {
  WarehouseConfig config;
  config.use_index = false;
  Harness setup = MakeWarehouse(config);
  auto outcome = setup.warehouse->ExecuteQuery(kQ1);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().docs_fetched, Corpus().size());
  EXPECT_EQ(outcome.value().docs_from_index, 0u);
  EXPECT_EQ(outcome.value().timings.index_get, 0);
}

TEST(WarehouseTest, RunIndexersWithoutIndexFails) {
  WarehouseConfig config;
  config.use_index = false;
  Harness setup = MakeWarehouse(config);
  EXPECT_TRUE(setup.warehouse->RunIndexers().status().IsFailedPrecondition());
}

TEST(WarehouseTest, DeterministicAcrossRuns) {
  auto run = [] {
    WarehouseConfig config;
    config.strategy = StrategyKind::kLUP;
    config.num_instances = 3;
    Harness setup = MakeWarehouse(config);
    EXPECT_TRUE(setup.warehouse->RunIndexers().ok());
    auto report = setup.warehouse->ExecuteQueries({kQ1, kQ3, kQ5});
    EXPECT_TRUE(report.ok());
    return std::make_pair(report.value().makespan,
                          setup.env->meter().ComputeBill().total());
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_DOUBLE_EQ(first.second, second.second);
}

TEST(WarehouseTest, MoreInstancesShortenTheQueryMakespan) {
  auto run = [](int instances) {
    WarehouseConfig config;
    config.strategy = StrategyKind::kLUP;
    config.num_instances = instances;
    Harness setup = MakeWarehouse(config);
    EXPECT_TRUE(setup.warehouse->RunIndexers().ok());
    std::vector<std::string> workload;
    for (int i = 0; i < 8; ++i) workload.push_back(kQ3);
    auto report = setup.warehouse->ExecuteQueries(workload);
    EXPECT_TRUE(report.ok());
    return report.value().makespan;
  };
  const auto one = run(1);
  const auto eight = run(8);
  EXPECT_LT(eight, one);
  EXPECT_GT(eight, one / 10);  // not super-linear either
}

TEST(WarehouseTest, XlInstancesFasterThanL) {
  auto run = [](cloud::InstanceType type) {
    WarehouseConfig config;
    config.strategy = StrategyKind::kLU;
    config.instance_type = type;
    Harness setup = MakeWarehouse(config);
    EXPECT_TRUE(setup.warehouse->RunIndexers().ok());
    auto outcome = setup.warehouse->ExecuteQuery(kQ1);
    EXPECT_TRUE(outcome.ok());
    return outcome.value().timings.total;
  };
  EXPECT_LT(run(cloud::InstanceType::kExtraLarge),
            run(cloud::InstanceType::kLarge));
}

TEST(WarehouseTest, CrashedIndexerTaskIsRedone) {
  WarehouseConfig config;
  config.strategy = StrategyKind::kLU;
  config.num_instances = 2;
  int crashes_remaining = 3;
  config.crash_plan = [&](cloud::CrashPoint point, int, const std::string&) {
    if (point == cloud::CrashPoint::kBeforeDelete && crashes_remaining > 0) {
      --crashes_remaining;
      return true;
    }
    return false;
  };
  Harness setup = MakeWarehouse(config);
  auto report = setup.warehouse->RunIndexers();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Every document ends up indexed despite the crashes; the three lost
  // tasks were re-processed.
  EXPECT_EQ(report.value().documents, Corpus().size() + 3);
  EXPECT_EQ(crashes_remaining, 0);
  EXPECT_TRUE(setup.env->sqs().Drained("loader-requests"));
  // Queries still work (duplicate index items are harmless).
  auto outcome = setup.warehouse->ExecuteQuery(kQ3);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().result.rows.size(), 1u);
}

TEST(WarehouseTest, CrashedQueryTaskIsRedone) {
  WarehouseConfig config;
  config.strategy = StrategyKind::kLU;
  bool crashed = false;
  config.crash_plan = [&](cloud::CrashPoint point, int,
                          const std::string& body) {
    if (point == cloud::CrashPoint::kBeforeDelete && !crashed &&
        body.rfind("QUERY", 0) == 0) {
      crashed = true;
      return true;
    }
    return false;
  };
  Harness setup = MakeWarehouse(config);
  ASSERT_TRUE(setup.warehouse->RunIndexers().ok());
  auto outcome = setup.warehouse->ExecuteQuery(kQ3);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(crashed);
  EXPECT_EQ(outcome.value().result.rows.size(), 1u);
}

TEST(WarehouseTest, MeterAccountsEveryService) {
  WarehouseConfig config;
  config.strategy = StrategyKind::kLUP;
  Harness setup = MakeWarehouse(config);
  ASSERT_TRUE(setup.warehouse->RunIndexers().ok());
  ASSERT_TRUE(setup.warehouse->ExecuteQuery(kQ1).ok());
  const cloud::Usage& usage = setup.env->meter().usage();
  EXPECT_GT(usage.s3_put_requests, 0u);
  EXPECT_GT(usage.s3_get_requests, 0u);
  EXPECT_GT(usage.ddb_put_requests, 0u);
  EXPECT_GT(usage.ddb_get_requests, 0u);
  EXPECT_GT(usage.sqs_requests, 0u);
  EXPECT_GT(usage.vm_micros_large, 0);
  EXPECT_GT(usage.egress_bytes, 0u);
  const cloud::Bill bill = setup.env->meter().ComputeBill();
  EXPECT_GT(bill.ec2, 0.0);
  EXPECT_GT(bill.total(), bill.ec2);
}

TEST(WarehouseTest, IndexSizesExposed) {
  WarehouseConfig config;
  config.strategy = StrategyKind::k2LUPI;
  Harness setup = MakeWarehouse(config);
  ASSERT_TRUE(setup.warehouse->RunIndexers().ok());
  EXPECT_GT(setup.warehouse->IndexRawBytes(), 0u);
  EXPECT_GT(setup.warehouse->IndexOverheadBytes(), 0u);
  EXPECT_GT(setup.warehouse->data_bytes(), 0u);
}

TEST(WarehouseTest, SimpleDbBackendWorksButCostsMore) {
  auto run = [](IndexBackend backend) {
    WarehouseConfig config;
    config.strategy = StrategyKind::kLU;
    config.backend = backend;
    Harness setup = MakeWarehouse(config);
    EXPECT_TRUE(setup.warehouse->RunIndexers().ok());
    auto outcome = setup.warehouse->ExecuteQuery(kQ3);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome.value().result.rows.size(), 1u);
    struct {
      cloud::Micros makespan;
      double bill;
    } out{outcome.value().timings.total,
          setup.env->meter().ComputeBill().total()};
    return out;
  };
  const auto dynamo = run(IndexBackend::kDynamoDb);
  const auto simple = run(IndexBackend::kSimpleDb);
  EXPECT_GT(simple.makespan, dynamo.makespan);
}

TEST(WarehouseTest, FrontEndClockAdvancesThroughPipeline) {
  WarehouseConfig config;
  config.strategy = StrategyKind::kLU;
  Harness setup = MakeWarehouse(config);
  const cloud::Micros after_load = setup.warehouse->front_end().now();
  EXPECT_GT(after_load, 0);
  ASSERT_TRUE(setup.warehouse->RunIndexers().ok());
  const cloud::Micros after_index = setup.warehouse->front_end().now();
  EXPECT_GT(after_index, after_load);
  ASSERT_TRUE(setup.warehouse->ExecuteQuery(kQ1).ok());
  EXPECT_GT(setup.warehouse->front_end().now(), after_index);
}

TEST(WarehouseTest, LongIndexingTasksRenewTheirLease) {
  // Construct a task longer than the visibility timeout: a huge S3
  // latency makes the extraction phase ~3 s and a huge DynamoDB latency
  // makes the upload phase ~6 s, against a 8 s timeout.  Without the
  // phase-boundary lease renewals the message would be redelivered to
  // the second instance mid-task and the document indexed twice.
  cloud::CloudConfig cloud_config;
  cloud_config.s3.request_latency = 3 * cloud::kMicrosPerSecond;
  cloud_config.dynamodb.request_latency = 3 * cloud::kMicrosPerSecond;
  cloud_config.sqs.visibility_timeout = 8 * cloud::kMicrosPerSecond;

  WarehouseConfig config;
  config.strategy = StrategyKind::kLU;
  config.num_instances = 2;

  auto env = std::make_unique<cloud::CloudEnv>(cloud_config);
  Warehouse warehouse(env.get(), config);
  ASSERT_TRUE(warehouse.Setup().ok());
  // One document with enough keys for two upload batches (~6 s upload).
  std::string xml = "<r>";
  for (int i = 0; i < 40; ++i) {
    xml += "<k" + std::to_string(i) + ">x</k" + std::to_string(i) + ">";
  }
  xml += "</r>";
  ASSERT_TRUE(warehouse.SubmitDocument("big.xml", xml).ok());

  const uint64_t sqs_before = env->meter().usage().sqs_requests;
  auto report = warehouse.RunIndexers();
  ASSERT_TRUE(report.ok());
  // Exactly one task processed: the lease held through both phases.
  EXPECT_EQ(report.value().documents, 1u);
  EXPECT_TRUE(env->sqs().Drained("loader-requests"));
  // And at least one renewal request was billed.
  EXPECT_GT(env->meter().usage().sqs_requests - sqs_before, 3u);
}

}  // namespace
}  // namespace webdex::engine
