// Self-healing index contract (docs/FAULTS.md): the Scrubber walks a
// strategy's index tables against the document bucket with *billed*
// reads, detects the garbage faults leave behind — half-written postings
// from a mid-BatchPut crash, missing postings from a dead-lettered task,
// orphans of deleted documents — and, with repair on, converges the
// tables byte-identically to a fault-free build via idempotent
// re-extraction.  Dead-lettered tasks can alternatively be re-driven
// through Warehouse::DrainDeadLetters and converge the same way.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud_env.h"
#include "engine/warehouse.h"
#include "index/generation.h"
#include "xmark/paintings.h"
#include "xmark/xmark_generator.h"

namespace webdex::engine {
namespace {

using index::StrategyKind;

std::vector<xmark::GeneratedDocument> Corpus() {
  auto docs = xmark::GeneratePaintings();
  xmark::GeneratorConfig config;
  config.num_documents = 8;
  config.entities_per_document = 6;
  for (auto& doc : xmark::XmarkGenerator(config).GenerateAll()) {
    docs.push_back(std::move(doc));
  }
  return docs;
}

const char* kQuery = "//painting[/name~'Lion', //painter/name/last:val]";

/// Full byte-level fingerprint of the index tables (keys and attribute
/// payloads), via the free host-side walk.
std::vector<std::string> Dump(Warehouse& warehouse) {
  std::vector<std::string> dump;
  warehouse.index_store().ForEachItem(
      [&dump](const std::string& table, const cloud::Item& item) {
        std::string line = table + "|" + item.hash_key + "|" + item.range_key;
        for (const auto& [name, values] : item.attrs) {
          line += "|" + name + "=";
          for (const auto& value : values) line += value + ",";
        }
        dump.push_back(std::move(line));
      });
  return dump;
}

struct Deployment {
  std::unique_ptr<cloud::CloudEnv> env;
  std::unique_ptr<Warehouse> warehouse;
  IndexingRunReport report;
};

Deployment Deploy(StrategyKind strategy,
                  const WarehouseConfig& base = WarehouseConfig()) {
  Deployment d;
  d.env = std::make_unique<cloud::CloudEnv>();
  WarehouseConfig config = base;
  config.strategy = strategy;
  config.num_instances = 2;
  d.warehouse = std::make_unique<Warehouse>(d.env.get(), config);
  EXPECT_TRUE(d.warehouse->Setup().ok());
  for (const auto& doc : Corpus()) {
    EXPECT_TRUE(d.warehouse->SubmitDocument(doc.uri, doc.text).ok());
  }
  auto report = d.warehouse->RunIndexers();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) d.report = report.value();
  return d;
}

/// A deployment whose first mid-BatchPut page boundary crashes the
/// instance, with max_deliveries == 1 so the redelivered task is
/// dead-lettered instead of retried: the run ends with a durably
/// half-written index and the poison task parked on the DLQ.
Deployment DeployHalfWritten(StrategyKind strategy) {
  auto crashes = std::make_shared<int>(1);
  WarehouseConfig config;
  config.max_deliveries = 1;
  config.crash_plan = [crashes](cloud::CrashPoint point, int,
                                const std::string&) {
    if (point != cloud::CrashPoint::kBetweenBatchPutPages) return false;
    if (*crashes > 0) {
      --*crashes;
      return true;
    }
    return false;
  };
  Deployment d = Deploy(strategy, config);
  EXPECT_EQ(*crashes, 0) << "corpus no longer produces multi-page uploads";
  return d;
}

// The acceptance scenario: forced half-written index -> report-only
// scrub detects it without touching anything -> repair scrub converges
// the tables byte-identically to the fault-free build, for a price.
TEST(ScrubberTest, HalfWrittenIndexIsDetectedAndRepaired) {
  Deployment clean = Deploy(StrategyKind::k2LUPI);
  const std::vector<std::string> clean_dump = Dump(*clean.warehouse);

  Deployment hurt = DeployHalfWritten(StrategyKind::k2LUPI);
  ASSERT_GE(hurt.report.dead_lettered, 1u);
  const std::vector<std::string> hurt_dump = Dump(*hurt.warehouse);
  ASSERT_NE(hurt_dump, clean_dump);

  // Report-only pass: finds the damage, changes nothing.
  auto audit = hurt.warehouse->Scrub(/*repair=*/false);
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  EXPECT_FALSE(audit.value().Clean());
  EXPECT_GE(audit.value().missing_uris.size() +
                audit.value().partial_uris.size(),
            1u);
  EXPECT_TRUE(audit.value().orphaned_uris.empty());
  EXPECT_EQ(audit.value().repaired_uris, 0u);
  EXPECT_EQ(audit.value().items_put, 0u);
  EXPECT_EQ(audit.value().items_deleted, 0u);
  EXPECT_EQ(audit.value().documents_checked, Corpus().size());
  EXPECT_GT(audit.value().items_scanned, 0u);
  EXPECT_EQ(Dump(*hurt.warehouse), hurt_dump);
  EXPECT_EQ(hurt.env->meter().usage().scrub_repaired, 0u);

  // Repair pass: byte-identical convergence, billed.
  const double before = hurt.env->meter().ComputeBill().total();
  auto repair = hurt.warehouse->Scrub(/*repair=*/true);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_GE(repair.value().repaired_uris, 1u);
  EXPECT_GT(repair.value().items_put, 0u);
  EXPECT_EQ(Dump(*hurt.warehouse), clean_dump);
  EXPECT_GT(hurt.env->meter().ComputeBill().total(), before);
  EXPECT_GE(hurt.env->meter().usage().scrub_repaired, 1u);

  // A second pass certifies the index clean, and the repaired index
  // answers exactly like the fault-free one.
  auto second = hurt.warehouse->Scrub(/*repair=*/false);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().Clean());
  auto want = clean.warehouse->ExecuteQuery(kQuery);
  auto got = hurt.warehouse->ExecuteQuery(kQuery);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(want.value().result.rows, got.value().result.rows);
  EXPECT_FALSE(got.value().degraded);
}

// A document whose postings were all lost (here: deleted through the
// billed API, as a dead-lettered extraction would leave them) is flagged
// missing and restored byte-identically.
TEST(ScrubberTest, MissingPostingsAreRestored) {
  Deployment d = Deploy(StrategyKind::kLUP);
  const std::vector<std::string> clean_dump = Dump(*d.warehouse);
  const std::string victim = d.warehouse->document_uris().front();

  struct Key {
    std::string table, hash, range;
  };
  std::vector<Key> keys;
  d.warehouse->index_store().ForEachItem(
      [&keys, &victim](const std::string& table, const cloud::Item& item) {
        if (item.attrs.size() == 1 && item.attrs.begin()->first == victim) {
          keys.push_back({table, item.hash_key, item.range_key});
        }
      });
  ASSERT_FALSE(keys.empty());
  for (const auto& key : keys) {
    ASSERT_TRUE(d.warehouse->index_store()
                    .DeleteItem(d.warehouse->front_end(), key.table, key.hash,
                                key.range)
                    .ok());
  }

  auto audit = d.warehouse->Scrub(/*repair=*/false);
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit.value().missing_uris, std::vector<std::string>{victim});
  EXPECT_TRUE(audit.value().partial_uris.empty());
  EXPECT_TRUE(audit.value().orphaned_uris.empty());

  auto repair = d.warehouse->Scrub(/*repair=*/true);
  ASSERT_TRUE(repair.ok());
  EXPECT_EQ(repair.value().repaired_uris, 1u);
  EXPECT_EQ(repair.value().items_put, keys.size());
  EXPECT_EQ(Dump(*d.warehouse), clean_dump);
}

// Postings of a document that no longer exists in the bucket are
// orphans: flagged by the audit, deleted by the repair.
TEST(ScrubberTest, OrphanedPostingsAreDeleted) {
  Deployment d = Deploy(StrategyKind::kLU);
  const std::string victim = d.warehouse->document_uris().front();
  ASSERT_TRUE(d.env->s3()
                  .Delete(d.warehouse->front_end(),
                          d.warehouse->config().data_bucket, victim)
                  .ok());

  auto audit = d.warehouse->Scrub(/*repair=*/false);
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit.value().orphaned_uris, std::vector<std::string>{victim});
  EXPECT_TRUE(audit.value().missing_uris.empty());
  EXPECT_TRUE(audit.value().partial_uris.empty());
  EXPECT_EQ(audit.value().documents_checked, Corpus().size() - 1);

  auto repair = d.warehouse->Scrub(/*repair=*/true);
  ASSERT_TRUE(repair.ok());
  EXPECT_EQ(repair.value().repaired_uris, 1u);
  EXPECT_GT(repair.value().items_deleted, 0u);
  bool victim_posting_left = false;
  d.warehouse->index_store().ForEachItem(
      [&victim_posting_left, &victim](const std::string&,
                                      const cloud::Item& item) {
        if (item.attrs.count(victim) > 0) victim_posting_left = true;
      });
  EXPECT_FALSE(victim_posting_left);

  auto second = d.warehouse->Scrub(/*repair=*/false);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().Clean());
}

// A clean build audits clean, and the audit itself is a priced
// maintenance job (billed Scans and GETs), not free host-side tooling.
TEST(ScrubberTest, CleanIndexAuditsCleanForAPrice) {
  Deployment d = Deploy(StrategyKind::kLUI);
  const double before = d.env->meter().ComputeBill().total();
  auto audit = d.warehouse->Scrub(/*repair=*/false);
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit.value().Clean());
  EXPECT_EQ(audit.value().documents_checked, Corpus().size());
  EXPECT_GT(audit.value().items_scanned, 0u);
  EXPECT_GT(d.env->meter().ComputeBill().total(), before);
  const std::string text = audit.value().ToString();
  EXPECT_NE(text.find("index is clean"), std::string::npos);
}

// An upserted document is audited at its *live* generation
// (docs/MUTABILITY.md): losing its stamped postings is damage the scrub
// detects and repairs byte-identically, while the superseded
// generation-0 postings lingering for the Compactor are never flagged.
TEST(ScrubberTest, UpsertedDocumentIsRepairedAtItsLiveGeneration) {
  Deployment d = Deploy(StrategyKind::kLUP);
  const std::string victim = d.warehouse->document_uris().front();
  ASSERT_TRUE(d.warehouse->UpsertDocument(victim, Corpus()[1].text).ok());
  auto rerun = d.warehouse->RunIndexers();
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  const std::vector<std::string> clean_dump = Dump(*d.warehouse);

  // Drop every stamped posting of the live generation, leaving only the
  // stale generation-0 ones.
  struct Key {
    std::string table, hash, range;
  };
  std::vector<Key> keys;
  d.warehouse->index_store().ForEachItem(
      [&keys, &victim](const std::string& table, const cloud::Item& item) {
        if (item.attrs.count(victim) > 0 &&
            item.attrs.count(index::kGenAttr) > 0) {
          keys.push_back({table, item.hash_key, item.range_key});
        }
      });
  ASSERT_FALSE(keys.empty());
  for (const auto& key : keys) {
    ASSERT_TRUE(d.warehouse->index_store()
                    .DeleteItem(d.warehouse->front_end(), key.table, key.hash,
                                key.range)
                    .ok());
  }

  auto audit = d.warehouse->Scrub(/*repair=*/false);
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit.value().missing_uris, std::vector<std::string>{victim});
  EXPECT_TRUE(audit.value().partial_uris.empty());
  EXPECT_TRUE(audit.value().orphaned_uris.empty());

  auto repair = d.warehouse->Scrub(/*repair=*/true);
  ASSERT_TRUE(repair.ok());
  EXPECT_EQ(repair.value().repaired_uris, 1u);
  EXPECT_EQ(repair.value().items_put, keys.size());
  EXPECT_EQ(Dump(*d.warehouse), clean_dump);
}

// Regression (docs/MUTABILITY.md): a tombstoned document must never be
// resurrected by a repair scrub.  Its postings linger (awaiting the
// Compactor) and its object is gone, but the scrub neither flags the
// leftovers as orphans nor re-puts anything.
TEST(ScrubberTest, TombstonedUriIsNeverResurrected) {
  Deployment d = Deploy(StrategyKind::k2LUPI);
  const std::string victim = d.warehouse->document_uris().front();
  ASSERT_TRUE(d.warehouse->DeleteDocument(victim).ok());
  auto rerun = d.warehouse->RunIndexers();
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  const std::vector<std::string> tombstoned_dump = Dump(*d.warehouse);

  auto audit = d.warehouse->Scrub(/*repair=*/false);
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  EXPECT_TRUE(audit.value().Clean());
  auto repair = d.warehouse->Scrub(/*repair=*/true);
  ASSERT_TRUE(repair.ok());
  EXPECT_EQ(repair.value().repaired_uris, 0u);
  EXPECT_EQ(repair.value().items_put, 0u);
  EXPECT_EQ(repair.value().items_deleted, 0u);
  EXPECT_EQ(Dump(*d.warehouse), tombstoned_dump);

  // Retiring the tombstone is the Compactor's job; once collected, the
  // scrub still audits clean (nothing resurfaces).
  auto compacted = d.warehouse->Compact(/*full=*/false);
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  EXPECT_EQ(compacted.value().collected_uris,
            std::vector<std::string>{victim});
  bool victim_posting_left = false;
  d.warehouse->index_store().ForEachItem(
      [&victim_posting_left, &victim](const std::string&,
                                      const cloud::Item& item) {
        if (item.attrs.count(victim) > 0) victim_posting_left = true;
      });
  EXPECT_FALSE(victim_posting_left);
  auto second = d.warehouse->Scrub(/*repair=*/false);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().Clean());
}

// The operational alternative to scrubbing: re-drive the dead-lettered
// task onto its origin queue and let a fresh indexing run converge the
// index without any repair pass.
TEST(ScrubberTest, DeadLetterDrainReconvergesWithoutScrub) {
  Deployment clean = Deploy(StrategyKind::k2LUPI);
  const std::vector<std::string> clean_dump = Dump(*clean.warehouse);

  Deployment hurt = DeployHalfWritten(StrategyKind::k2LUPI);
  ASSERT_GE(hurt.report.dead_lettered, 1u);
  ASSERT_NE(Dump(*hurt.warehouse), clean_dump);

  auto drained = hurt.warehouse->DrainDeadLetters();
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_GE(drained.value(), 1u);

  auto rerun = hurt.warehouse->RunIndexers();
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(Dump(*hurt.warehouse), clean_dump);

  // Nothing left parked, and the audit agrees.
  auto again = hurt.warehouse->DrainDeadLetters();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 0u);
  auto audit = hurt.warehouse->Scrub(/*repair=*/false);
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit.value().Clean());
}

}  // namespace
}  // namespace webdex::engine
