#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cloud/cloud_env.h"
#include "index/strategy.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "xmark/paintings.h"
#include "xmark/xmark_generator.h"
#include "xml/parser.h"

namespace webdex::index {
namespace {

class TestAgent : public cloud::SimAgent {};

/// An indexed corpus shared by the strategy tests: the paintings corpus
/// plus a slice of XMark, indexed under every strategy into one DynamoDB.
class StrategyTest : public ::testing::TestWithParam<StrategyKind> {
 protected:
  static void SetUpTestSuite() {
    env_ = new cloud::CloudEnv();
    docs_ = new std::vector<xml::Document>();

    std::vector<xmark::GeneratedDocument> generated =
        xmark::GeneratePaintings();
    xmark::GeneratorConfig config;
    config.num_documents = 25;
    config.entities_per_document = 6;
    xmark::XmarkGenerator generator(config);
    for (const auto& doc : generator.GenerateAll()) {
      generated.push_back(doc);
    }
    for (const auto& doc : generated) {
      auto parsed = xml::ParseDocument(doc.uri, doc.text);
      ASSERT_TRUE(parsed.ok()) << doc.uri;
      docs_->push_back(std::move(parsed).value());
    }

    TestAgent loader;
    for (StrategyKind kind : AllStrategyKinds()) {
      auto strategy = IndexingStrategy::Create(kind);
      for (const auto& table : strategy->TableNames()) {
        ASSERT_TRUE(env_->dynamodb().CreateTable(loader, table).ok());
      }
      for (const auto& doc : *docs_) {
        ExtractStats stats;
        auto items = strategy->ExtractItems(doc, {}, env_->dynamodb(),
                                            env_->rng(), &stats);
        ASSERT_TRUE(items.ok()) << items.status().ToString();
        for (const auto& batch : items.value()) {
          ASSERT_TRUE(env_->dynamodb()
                          .BatchPut(loader, batch.table, batch.items)
                          .ok());
        }
      }
    }
  }

  static void TearDownTestSuite() {
    delete env_;
    delete docs_;
    env_ = nullptr;
    docs_ = nullptr;
  }

  static std::set<std::string> GroundTruth(const query::TreePattern& pattern) {
    std::set<std::string> uris;
    for (const auto& doc : *docs_) {
      if (query::Evaluator::Matches(pattern, doc)) uris.insert(doc.uri());
    }
    return uris;
  }

  static std::set<std::string> Lookup(StrategyKind kind,
                                      const query::TreePattern& pattern,
                                      LookupStats* stats = nullptr) {
    auto strategy = IndexingStrategy::Create(kind);
    TestAgent agent;
    LookupStats local;
    auto uris =
        strategy->LookupPattern(agent, env_->dynamodb(), pattern, {},
                                stats != nullptr ? stats : &local);
    EXPECT_TRUE(uris.ok()) << uris.status().ToString();
    return {uris.value().begin(), uris.value().end()};
  }

  static query::Query Parse(std::string_view text) {
    auto q = query::ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }

  static cloud::CloudEnv* env_;
  static std::vector<xml::Document>* docs_;
};

cloud::CloudEnv* StrategyTest::env_ = nullptr;
std::vector<xml::Document>* StrategyTest::docs_ = nullptr;

// Workload used for the soundness sweep: the paper's Figure 2 queries
// (q1-q5) plus XMark-flavoured patterns covering every predicate type.
const char* kPatterns[] = {
    "//painting[/name:val, //painter/name:val]",
    "//painting[//description:cont, /year='1854']",
    "//painting[/name~'Lion', //painter/name/last:val]",
    "//painting[/name:val, /painter/name[/last='Manet'], "
    "/year in(1854,1865]]",
    "//museum[/name:val, /painting/@id]",
    "//painting[/@id, /painter/name[/last='Delacroix']]",
    "//item[/mailbox/mail, /name]",
    "//person[/address[/city], /homepage]",
    "//open_auction[/reserve, /bidder/increase]",
    "//closed_auction[/price, /annotation[/happiness]]",
    "//item[/description~'gold']",
    "//regions//item[/@id]",
};

TEST_P(StrategyTest, LookupIsSound) {
  // No false negatives, ever: every document with results is retrieved
  // (this is what makes index-then-evaluate correct).
  for (const char* text : kPatterns) {
    const query::Query query = Parse(text);
    for (const auto& pattern : query.patterns()) {
      const std::set<std::string> truth = GroundTruth(pattern);
      const std::set<std::string> retrieved = Lookup(GetParam(), pattern);
      for (const auto& uri : truth) {
        EXPECT_TRUE(retrieved.count(uri))
            << StrategyKindName(GetParam()) << " missed " << uri << " for "
            << text;
      }
    }
  }
}

TEST_P(StrategyTest, SelectiveQueriesPruneMostDocuments) {
  const query::Query query = Parse("//painting[/@id='1863-1']");
  const std::set<std::string> retrieved =
      Lookup(GetParam(), query.patterns()[0]);
  EXPECT_LE(retrieved.size(), 3u) << StrategyKindName(GetParam());
  EXPECT_TRUE(retrieved.count("painting-001.xml"));
}

TEST_P(StrategyTest, MissingLabelYieldsEmptyResult) {
  const query::Query query = Parse("//nonexistent[/whatever]");
  EXPECT_TRUE(Lookup(GetParam(), query.patterns()[0]).empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyTest,
    ::testing::ValuesIn(AllStrategyKinds()),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
      return std::string(StrategyKindName(info.param));
    });

// --- Cross-strategy relationships (paper Sections 5.4 and 8.2) --------------

class StrategyRelations : public StrategyTest {};

TEST_F(StrategyRelations, TwoLupiReturnsSameUrisAsLui) {
  // "It follows from the above explanation that 2LUPI returns the same
  // URIs as LUI" (Section 5.4)... given LUP's reduction never removes a
  // true candidate, which holds by soundness.
  for (const char* text : kPatterns) {
    const query::Query query = Parse(text);
    for (const auto& pattern : query.patterns()) {
      EXPECT_EQ(Lookup(StrategyKind::kLUI, pattern),
                Lookup(StrategyKind::k2LUPI, pattern))
          << text;
    }
  }
}

TEST_F(StrategyRelations, PrecisionOrderingHolds) {
  // LU is the least precise, LUP at least as precise as LU, LUI/2LUPI the
  // most precise: retrieved sets must be nested accordingly.
  for (const char* text : kPatterns) {
    const query::Query query = Parse(text);
    for (const auto& pattern : query.patterns()) {
      const auto lu = Lookup(StrategyKind::kLU, pattern);
      const auto lup = Lookup(StrategyKind::kLUP, pattern);
      const auto lui = Lookup(StrategyKind::kLUI, pattern);
      EXPECT_TRUE(std::includes(lu.begin(), lu.end(), lup.begin(),
                                lup.end()))
          << "LUP not within LU for " << text;
      EXPECT_TRUE(std::includes(lu.begin(), lu.end(), lui.begin(),
                                lui.end()))
          << "LUI not within LU for " << text;
    }
  }
}

TEST_F(StrategyRelations, LuiExactForTreePatterns) {
  // Table 5: LUI and 2LUPI return no false positives on q1-q7 style
  // tree patterns (child/descendant structure without cross-pattern
  // joins).  Our descendant-edge treatment of equality predicates is
  // conservative, so exactness is asserted for predicate-free patterns.
  const char* exact_patterns[] = {
      "//painting[/name, //painter/name/last]",
      "//item[/mailbox/mail, /name]",
      "//person[/address[/city], /homepage]",
      "//open_auction[/reserve, /bidder/increase]",
      "//museum[/name, /painting/@id]",
  };
  for (const char* text : exact_patterns) {
    const query::Query query = Parse(text);
    const auto& pattern = query.patterns()[0];
    EXPECT_EQ(Lookup(StrategyKind::kLUI, pattern), GroundTruth(pattern))
        << text;
  }
}

TEST_F(StrategyRelations, LookupStatsPopulated) {
  const query::Query query =
      Parse("//painting[/name~'Lion', //painter/name/last]");
  LookupStats lu_stats, lup_stats, lui_stats, two_stats;
  Lookup(StrategyKind::kLU, query.patterns()[0], &lu_stats);
  Lookup(StrategyKind::kLUP, query.patterns()[0], &lup_stats);
  Lookup(StrategyKind::kLUI, query.patterns()[0], &lui_stats);
  Lookup(StrategyKind::k2LUPI, query.patterns()[0], &two_stats);
  EXPECT_GT(lu_stats.keys_looked_up, 0u);
  EXPECT_GT(lu_stats.uri_merge_ops, 0u);
  EXPECT_EQ(lu_stats.paths_tested, 0u);
  EXPECT_EQ(lu_stats.twig_id_ops, 0u);
  EXPECT_GT(lup_stats.paths_tested, 0u);
  EXPECT_GT(lui_stats.twig_id_ops, 0u);
  EXPECT_GT(two_stats.paths_tested, 0u);
  EXPECT_GT(two_stats.twig_id_ops, 0u);
  EXPECT_GT(lui_stats.bytes_fetched, lu_stats.bytes_fetched);
}

// --- Extraction payload relationships ---------------------------------------

TEST_F(StrategyRelations, IndexSizesOrderedLikeFigure8) {
  // Raw index payload: LU < LUI < LUP on text-heavy documents, and
  // 2LUPI = LUP + LUI.
  const uint64_t lu = env_->dynamodb().StoredBytes("idx-lu");
  const uint64_t lup = env_->dynamodb().StoredBytes("idx-lup");
  const uint64_t lui = env_->dynamodb().StoredBytes("idx-lui");
  const uint64_t two = env_->dynamodb().StoredBytes("idx-2lupi-paths") +
                       env_->dynamodb().StoredBytes("idx-2lupi-ids");
  EXPECT_LT(lu, lui);
  EXPECT_LT(lui, lup);
  EXPECT_NEAR(static_cast<double>(two), static_cast<double>(lup + lui),
              static_cast<double>(two) * 0.01);
}

// --- Store-capability adaptation ---------------------------------------------

TEST(StrategyStoreTest, ChunksOversizedIdListsForSimpleDb) {
  // A document with very many identical labels produces an ID list whose
  // encoding exceeds SimpleDB's 1 KB value limit; extraction must chunk
  // (and hex-armour) rather than fail.
  std::string xml = "<r>";
  for (int i = 0; i < 2000; ++i) xml += "<a/>";
  xml += "</r>";
  auto doc = xml::ParseDocument("big.xml", xml);
  ASSERT_TRUE(doc.ok());

  cloud::CloudEnv env;
  auto strategy = IndexingStrategy::Create(StrategyKind::kLUI);
  ExtractStats stats;
  auto items = strategy->ExtractItems(doc.value(), {}, env.simpledb(),
                                      env.rng(), &stats);
  ASSERT_TRUE(items.ok()) << items.status().ToString();
  TestAgent agent;
  ASSERT_TRUE(env.simpledb().CreateTable(agent, "idx-lui").ok());
  for (const auto& batch : items.value()) {
    ASSERT_TRUE(env.simpledb().BatchPut(agent, batch.table, batch.items).ok());
  }
  // Look-up over the chunked, armoured entries still works.
  auto query = query::ParseQuery("//r[/a]");
  ASSERT_TRUE(query.ok());
  LookupStats lookup_stats;
  auto uris = strategy->LookupPattern(agent, env.simpledb(),
                                      query.value().patterns()[0], {},
                                      &lookup_stats);
  ASSERT_TRUE(uris.ok());
  EXPECT_EQ(uris.value(), std::vector<std::string>{"big.xml"});
}

TEST(StrategyStoreTest, SameLookupResultsOnBothStores) {
  const auto corpus = xmark::GeneratePaintings();
  cloud::CloudEnv env;
  TestAgent agent;
  auto strategy = IndexingStrategy::Create(StrategyKind::k2LUPI);
  for (const auto& table : strategy->TableNames()) {
    ASSERT_TRUE(env.dynamodb().CreateTable(agent, table).ok());
    ASSERT_TRUE(env.simpledb().CreateTable(agent, table).ok());
  }
  for (const auto& generated : corpus) {
    auto doc = xml::ParseDocument(generated.uri, generated.text);
    ASSERT_TRUE(doc.ok());
    for (cloud::KvStore* store :
         {static_cast<cloud::KvStore*>(&env.dynamodb()),
          static_cast<cloud::KvStore*>(&env.simpledb())}) {
      ExtractStats stats;
      auto items =
          strategy->ExtractItems(doc.value(), {}, *store, env.rng(), &stats);
      ASSERT_TRUE(items.ok());
      for (const auto& batch : items.value()) {
        ASSERT_TRUE(store->BatchPut(agent, batch.table, batch.items).ok());
      }
    }
  }
  auto query = query::ParseQuery(
      "//painting[/name~'Lion', //painter/name/last]");
  ASSERT_TRUE(query.ok());
  LookupStats s1, s2;
  auto dynamo = strategy->LookupPattern(agent, env.dynamodb(),
                                        query.value().patterns()[0], {}, &s1);
  auto simple = strategy->LookupPattern(agent, env.simpledb(),
                                        query.value().patterns()[0], {}, &s2);
  ASSERT_TRUE(dynamo.ok());
  ASSERT_TRUE(simple.ok());
  EXPECT_EQ(dynamo.value(), simple.value());
  // Hex armouring makes the SimpleDB payload strictly larger.
  EXPECT_GT(s2.bytes_fetched, s1.bytes_fetched);
}

TEST(StrategyStoreTest, NoWordsIndexStillSoundForWordPredicates) {
  // An index built without w-keys cannot prune on word constants, but
  // look-ups configured to match (BuildKeyTwig without predicate words)
  // must stay sound: every document with results is retrieved.
  const auto generated = xmark::GeneratePaintings();
  std::vector<xml::Document> docs;
  for (const auto& doc : generated) {
    auto parsed = xml::ParseDocument(doc.uri, doc.text);
    ASSERT_TRUE(parsed.ok());
    docs.push_back(std::move(parsed).value());
  }
  cloud::CloudEnv env;
  TestAgent agent;
  ExtractOptions no_words;
  no_words.include_words = false;
  for (StrategyKind kind : AllStrategyKinds()) {
    auto strategy = IndexingStrategy::Create(kind);
    for (const auto& table : strategy->TableNames()) {
      if (!env.dynamodb().HasTable(table)) {
        ASSERT_TRUE(env.dynamodb().CreateTable(agent, table).ok());
      }
    }
    for (const auto& doc : docs) {
      ExtractStats stats;
      auto items = strategy->ExtractItems(doc, no_words, env.dynamodb(),
                                          env.rng(), &stats);
      ASSERT_TRUE(items.ok());
      for (const auto& batch : items.value()) {
        ASSERT_TRUE(
            env.dynamodb().BatchPut(agent, batch.table, batch.items).ok());
      }
    }
  }
  const char* queries[] = {
      "//painting[/name~'Lion', //painter/name/last:val]",
      "//painting[//description:cont, /year='1854']",
      "//painting[/painter/name[/last='Manet']]",
  };
  for (const char* text : queries) {
    auto query = query::ParseQuery(text);
    ASSERT_TRUE(query.ok());
    const auto& pattern = query.value().patterns()[0];
    std::set<std::string> truth;
    for (const auto& doc : docs) {
      if (query::Evaluator::Matches(pattern, doc)) truth.insert(doc.uri());
    }
    ASSERT_FALSE(truth.empty()) << text;
    for (StrategyKind kind : AllStrategyKinds()) {
      auto strategy = IndexingStrategy::Create(kind);
      LookupStats stats;
      auto uris = strategy->LookupPattern(agent, env.dynamodb(), pattern,
                                          no_words, &stats);
      ASSERT_TRUE(uris.ok()) << text;
      const std::set<std::string> retrieved(uris.value().begin(),
                                            uris.value().end());
      for (const auto& uri : truth) {
        EXPECT_TRUE(retrieved.count(uri))
            << StrategyKindName(kind) << " (no-words) missed " << uri
            << " for " << text;
      }
    }
  }
}

TEST(StrategyStoreTest, CompressedPathsGiveSameLookups) {
  // The Section 8.5 extension must not change look-up answers, only the
  // stored representation.
  const auto corpus = xmark::GeneratePaintings();
  cloud::CloudEnv env;
  TestAgent agent;
  auto strategy = IndexingStrategy::Create(StrategyKind::kLUP);
  ASSERT_TRUE(env.dynamodb().CreateTable(agent, "idx-lup").ok());

  ExtractOptions plain;
  ExtractOptions coded;
  coded.compress_paths = true;

  // Two private environments: one per representation.
  cloud::CloudEnv coded_env;
  ASSERT_TRUE(coded_env.dynamodb().CreateTable(agent, "idx-lup").ok());
  uint64_t plain_bytes = 0, coded_bytes = 0;
  for (const auto& generated : corpus) {
    auto doc = xml::ParseDocument(generated.uri, generated.text);
    ASSERT_TRUE(doc.ok());
    ExtractStats s1, s2;
    auto items_plain = strategy->ExtractItems(doc.value(), plain,
                                              env.dynamodb(), env.rng(), &s1);
    auto items_coded = strategy->ExtractItems(
        doc.value(), coded, coded_env.dynamodb(), coded_env.rng(), &s2);
    ASSERT_TRUE(items_plain.ok());
    ASSERT_TRUE(items_coded.ok());
    for (const auto& batch : items_plain.value()) {
      ASSERT_TRUE(env.dynamodb().BatchPut(agent, batch.table, batch.items)
                      .ok());
    }
    for (const auto& batch : items_coded.value()) {
      ASSERT_TRUE(coded_env.dynamodb()
                      .BatchPut(agent, batch.table, batch.items)
                      .ok());
    }
  }
  plain_bytes = env.dynamodb().StoredBytes("idx-lup");
  coded_bytes = coded_env.dynamodb().StoredBytes("idx-lup");
  // Singleton path sets dominate this corpus, so the overall gain is
  // small; the representation must never cost more than ~2% though.
  EXPECT_LE(coded_bytes, plain_bytes + plain_bytes / 50);

  const char* queries[] = {
      "//painting[/name~'Lion', //painter/name/last]",
      "//museum[/name, /painting/@id]",
      "//painting[/painter/name[/last='Manet']]",
  };
  for (const char* text : queries) {
    auto query = query::ParseQuery(text);
    ASSERT_TRUE(query.ok());
    LookupStats s1, s2;
    auto from_plain = strategy->LookupPattern(
        agent, env.dynamodb(), query.value().patterns()[0], plain, &s1);
    auto from_coded = strategy->LookupPattern(
        agent, coded_env.dynamodb(), query.value().patterns()[0], coded,
        &s2);
    ASSERT_TRUE(from_plain.ok());
    ASSERT_TRUE(from_coded.ok()) << from_coded.status().ToString();
    EXPECT_EQ(from_plain.value(), from_coded.value()) << text;
  }
}

}  // namespace
}  // namespace webdex::index
