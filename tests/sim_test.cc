#include <gtest/gtest.h>

#include "cloud/sim.h"

namespace webdex::cloud {
namespace {

TEST(SimAgentTest, StartsAtZeroAndAdvances) {
  class Agent : public SimAgent {} agent;
  EXPECT_EQ(agent.now(), 0);
  agent.Advance(100);
  EXPECT_EQ(agent.now(), 100);
  agent.Advance(-5);  // negative deltas ignored
  EXPECT_EQ(agent.now(), 100);
}

TEST(SimAgentTest, AdvanceToNeverGoesBackwards) {
  class Agent : public SimAgent {} agent;
  agent.AdvanceTo(50);
  EXPECT_EQ(agent.now(), 50);
  agent.AdvanceTo(20);
  EXPECT_EQ(agent.now(), 50);
  agent.ResetClock(10);
  EXPECT_EQ(agent.now(), 10);
}

TEST(RateLimiterTest, UnlimitedPassesThrough) {
  RateLimiter limiter(0);
  EXPECT_EQ(limiter.Acquire(123, 100), 123);
  EXPECT_EQ(limiter.Acquire(50, 1e9), 50);
}

TEST(RateLimiterTest, ServiceTimeProportionalToUnits) {
  RateLimiter limiter(1000);  // 1000 units/s => 1000 us/unit
  EXPECT_EQ(limiter.Acquire(0, 1), 1000);
  EXPECT_EQ(limiter.Acquire(0, 1), 2000);  // queued behind the first
}

TEST(RateLimiterTest, IdleServiceStartsAtArrival) {
  RateLimiter limiter(1000);
  EXPECT_EQ(limiter.Acquire(0, 1), 1000);
  // Arrives long after the service went idle: no queueing delay.
  EXPECT_EQ(limiter.Acquire(1'000'000, 1), 1'001'000);
}

TEST(RateLimiterTest, SaturationAccumulates) {
  RateLimiter limiter(10);  // 100 ms per unit
  Micros finish = 0;
  for (int i = 0; i < 10; ++i) finish = limiter.Acquire(0, 1);
  EXPECT_EQ(finish, 1'000'000);  // 10 units at 10/s = 1 virtual second
}

TEST(RateLimiterTest, ResetClearsBacklog) {
  RateLimiter limiter(10);
  limiter.Acquire(0, 100);
  limiter.Reset();
  EXPECT_EQ(limiter.Acquire(0, 1), 100'000);
}

TEST(SimTest, MicrosToHours) {
  EXPECT_DOUBLE_EQ(MicrosToHours(kMicrosPerHour), 1.0);
  EXPECT_DOUBLE_EQ(MicrosToHours(kMicrosPerHour / 2), 0.5);
  EXPECT_DOUBLE_EQ(MicrosToHours(0), 0.0);
}

}  // namespace
}  // namespace webdex::cloud
