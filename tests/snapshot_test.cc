#include <gtest/gtest.h>

#include <cstdio>

#include "cloud/snapshot.h"
#include "engine/warehouse.h"
#include "xmark/paintings.h"

namespace webdex::cloud {
namespace {

class Agent : public SimAgent {};

TEST(SnapshotTest, EmptyEnvironmentRoundTrips) {
  CloudEnv env;
  const std::string snapshot = SerializeSnapshot(env);
  CloudEnv restored;
  ASSERT_TRUE(RestoreSnapshot(snapshot, &restored).ok());
  EXPECT_TRUE(restored.s3().Empty());
  EXPECT_TRUE(restored.dynamodb().Empty());
}

TEST(SnapshotTest, ObjectsAndItemsRoundTrip) {
  CloudEnv env;
  Agent agent;
  ASSERT_TRUE(env.s3().CreateBucket("data").ok());
  ASSERT_TRUE(env.s3().Put(agent, "data", "a.xml", "<a/>").ok());
  std::string binary("\x00\x01\xff", 3);
  ASSERT_TRUE(env.s3().Put(agent, "data", "blob", binary).ok());
  ASSERT_TRUE(env.dynamodb().CreateTable("idx").ok());
  ASSERT_TRUE(env.dynamodb()
                  .BatchPut(agent, "idx",
                            {Item{"k", "r", {{"a.xml", {"v1", binary}}}}})
                  .ok());
  ASSERT_TRUE(env.simpledb().CreateTable("legacy").ok());
  ASSERT_TRUE(env.simpledb()
                  .BatchPut(agent, "legacy",
                            {Item{"k2", "r2", {{"doc", {"text"}}}}})
                  .ok());

  CloudEnv restored;
  ASSERT_TRUE(RestoreSnapshot(SerializeSnapshot(env), &restored).ok());

  Agent reader;
  auto object = restored.s3().Get(reader, "data", "a.xml");
  ASSERT_TRUE(object.ok());
  EXPECT_EQ(object.value(), "<a/>");
  EXPECT_EQ(restored.s3().Get(reader, "data", "blob").value(), binary);
  auto items = restored.dynamodb().Get(reader, "idx", "k");
  ASSERT_TRUE(items.ok());
  ASSERT_EQ(items.value().size(), 1u);
  EXPECT_EQ(items.value()[0].attrs.at("a.xml"),
            (AttributeValues{"v1", binary}));
  EXPECT_EQ(restored.dynamodb().StoredBytes("idx"),
            env.dynamodb().StoredBytes("idx"));
  EXPECT_EQ(restored.simpledb().ItemCount("legacy"), 1u);
  EXPECT_EQ(restored.simpledb().OverheadBytes("legacy"),
            env.simpledb().OverheadBytes("legacy"));
}

TEST(SnapshotTest, EmptyTablesSurvive) {
  CloudEnv env;
  ASSERT_TRUE(env.dynamodb().CreateTable("empty").ok());
  CloudEnv restored;
  ASSERT_TRUE(RestoreSnapshot(SerializeSnapshot(env), &restored).ok());
  EXPECT_TRUE(restored.dynamodb().HasTable("empty"));
  EXPECT_EQ(restored.dynamodb().ItemCount("empty"), 0u);
}

TEST(SnapshotTest, RejectsGarbageAndTruncation) {
  CloudEnv empty;
  EXPECT_TRUE(RestoreSnapshot("", &empty).IsCorruption());
  EXPECT_TRUE(RestoreSnapshot("NOTASNAP", &empty).IsCorruption());

  CloudEnv env;
  Agent agent;
  ASSERT_TRUE(env.s3().CreateBucket("b").ok());
  ASSERT_TRUE(env.s3().Put(agent, "b", "k", "payload").ok());
  std::string snapshot = SerializeSnapshot(env);
  for (size_t cut : {snapshot.size() - 1, snapshot.size() / 2, size_t{9}}) {
    CloudEnv fresh;
    EXPECT_TRUE(
        RestoreSnapshot(snapshot.substr(0, cut), &fresh).IsCorruption())
        << "cut at " << cut;
  }
  // Trailing garbage is also rejected.
  CloudEnv fresh;
  EXPECT_TRUE(RestoreSnapshot(snapshot + "x", &fresh).IsCorruption());
}

TEST(SnapshotTest, RefusesNonEmptyTarget) {
  CloudEnv env;
  const std::string snapshot = SerializeSnapshot(env);
  CloudEnv busy;
  ASSERT_TRUE(busy.s3().CreateBucket("b").ok());
  EXPECT_TRUE(RestoreSnapshot(snapshot, &busy).IsAlreadyExists());
}

TEST(SnapshotTest, FileRoundTripThroughWarehouse) {
  // Index a corpus, snapshot to disk, restore into a fresh cloud, attach
  // a new warehouse, and get identical query answers without reindexing.
  const std::string path = "/tmp/webdex_snapshot_test.bin";
  engine::QueryOutcome original;
  {
    CloudEnv env;
    engine::WarehouseConfig config;
    config.strategy = index::StrategyKind::kLUP;
    engine::Warehouse warehouse(&env, config);
    ASSERT_TRUE(warehouse.Setup().ok());
    for (const auto& doc : xmark::GeneratePaintings()) {
      ASSERT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
    }
    ASSERT_TRUE(warehouse.RunIndexers().ok());
    auto outcome = warehouse.ExecuteQuery(
        "//painting[/name~'Lion', //painter/name/last:val]");
    ASSERT_TRUE(outcome.ok());
    original = std::move(outcome).value();
    ASSERT_TRUE(SaveSnapshotFile(env, path).ok());
  }

  CloudEnv restored;
  ASSERT_TRUE(LoadSnapshotFile(path, &restored).ok());
  engine::WarehouseConfig config;
  config.strategy = index::StrategyKind::kLUP;
  engine::Warehouse warehouse(&restored, config);
  ASSERT_TRUE(warehouse.AttachToExistingCloud().ok());
  EXPECT_GT(warehouse.document_uris().size(), 40u);
  auto outcome = warehouse.ExecuteQuery(
      "//painting[/name~'Lion', //painter/name/last:val]");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().result.rows, original.result.rows);
  EXPECT_EQ(outcome.value().docs_fetched, original.docs_fetched);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileFails) {
  CloudEnv env;
  EXPECT_TRUE(
      LoadSnapshotFile("/tmp/definitely-not-there.bin", &env).IsIOError());
}

}  // namespace
}  // namespace webdex::cloud
