#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "cloud/snapshot.h"
#include "engine/warehouse.h"
#include "xmark/paintings.h"

namespace webdex::cloud {
namespace {

class Agent : public SimAgent {};

TEST(SnapshotTest, EmptyEnvironmentRoundTrips) {
  CloudEnv env;
  const std::string snapshot = SerializeSnapshot(env);
  CloudEnv restored;
  ASSERT_TRUE(RestoreSnapshot(snapshot, &restored).ok());
  EXPECT_TRUE(restored.s3().Empty());
  EXPECT_TRUE(restored.dynamodb().Empty());
}

TEST(SnapshotTest, ObjectsAndItemsRoundTrip) {
  CloudEnv env;
  Agent agent;
  ASSERT_TRUE(env.s3().CreateBucket("data").ok());
  ASSERT_TRUE(env.s3().Put(agent, "data", "a.xml", "<a/>").ok());
  std::string binary("\x00\x01\xff", 3);
  ASSERT_TRUE(env.s3().Put(agent, "data", "blob", binary).ok());
  ASSERT_TRUE(env.dynamodb().CreateTable(agent, "idx").ok());
  ASSERT_TRUE(env.dynamodb()
                  .BatchPut(agent, "idx",
                            {Item{"k", "r", {{"a.xml", {"v1", binary}}}}})
                  .ok());
  ASSERT_TRUE(env.simpledb().CreateTable(agent, "legacy").ok());
  ASSERT_TRUE(env.simpledb()
                  .BatchPut(agent, "legacy",
                            {Item{"k2", "r2", {{"doc", {"text"}}}}})
                  .ok());

  CloudEnv restored;
  ASSERT_TRUE(RestoreSnapshot(SerializeSnapshot(env), &restored).ok());

  Agent reader;
  auto object = restored.s3().Get(reader, "data", "a.xml");
  ASSERT_TRUE(object.ok());
  EXPECT_EQ(object.value(), "<a/>");
  EXPECT_EQ(restored.s3().Get(reader, "data", "blob").value(), binary);
  auto items = restored.dynamodb().Get(reader, "idx", "k");
  ASSERT_TRUE(items.ok());
  ASSERT_EQ(items.value().size(), 1u);
  EXPECT_EQ(items.value()[0].attrs.at("a.xml"),
            (AttributeValues{"v1", binary}));
  EXPECT_EQ(restored.dynamodb().StoredBytes("idx"),
            env.dynamodb().StoredBytes("idx"));
  EXPECT_EQ(restored.simpledb().ItemCount("legacy"), 1u);
  EXPECT_EQ(restored.simpledb().OverheadBytes("legacy"),
            env.simpledb().OverheadBytes("legacy"));
}

TEST(SnapshotTest, EmptyTablesSurvive) {
  CloudEnv env;
  Agent agent;
  ASSERT_TRUE(env.dynamodb().CreateTable(agent, "empty").ok());
  CloudEnv restored;
  ASSERT_TRUE(RestoreSnapshot(SerializeSnapshot(env), &restored).ok());
  EXPECT_TRUE(restored.dynamodb().HasTable("empty"));
  EXPECT_EQ(restored.dynamodb().ItemCount("empty"), 0u);
}

TEST(SnapshotTest, RejectsGarbageAndTruncation) {
  CloudEnv empty;
  EXPECT_TRUE(RestoreSnapshot("", &empty).IsCorruption());
  EXPECT_TRUE(RestoreSnapshot("NOTASNAP", &empty).IsCorruption());

  CloudEnv env;
  Agent agent;
  ASSERT_TRUE(env.s3().CreateBucket("b").ok());
  ASSERT_TRUE(env.s3().Put(agent, "b", "k", "payload").ok());
  std::string snapshot = SerializeSnapshot(env);
  for (size_t cut : {snapshot.size() - 1, snapshot.size() / 2, size_t{9}}) {
    CloudEnv fresh;
    EXPECT_TRUE(
        RestoreSnapshot(snapshot.substr(0, cut), &fresh).IsCorruption())
        << "cut at " << cut;
  }
  // Trailing garbage is also rejected.
  CloudEnv fresh;
  EXPECT_TRUE(RestoreSnapshot(snapshot + "x", &fresh).IsCorruption());
}

TEST(SnapshotTest, RefusesNonEmptyTarget) {
  CloudEnv env;
  const std::string snapshot = SerializeSnapshot(env);
  CloudEnv busy;
  ASSERT_TRUE(busy.s3().CreateBucket("b").ok());
  EXPECT_TRUE(RestoreSnapshot(snapshot, &busy).IsAlreadyExists());
}

TEST(SnapshotTest, FileRoundTripThroughWarehouse) {
  // Index a corpus, snapshot to disk, restore into a fresh cloud, attach
  // a new warehouse, and get identical query answers without reindexing.
  const std::string path = "/tmp/webdex_snapshot_test.bin";
  engine::QueryOutcome original;
  {
    CloudEnv env;
    engine::WarehouseConfig config;
    config.strategy = index::StrategyKind::kLUP;
    engine::Warehouse warehouse(&env, config);
    ASSERT_TRUE(warehouse.Setup().ok());
    for (const auto& doc : xmark::GeneratePaintings()) {
      ASSERT_TRUE(warehouse.SubmitDocument(doc.uri, doc.text).ok());
    }
    ASSERT_TRUE(warehouse.RunIndexers().ok());
    auto outcome = warehouse.ExecuteQuery(
        "//painting[/name~'Lion', //painter/name/last:val]");
    ASSERT_TRUE(outcome.ok());
    original = std::move(outcome).value();
    ASSERT_TRUE(SaveSnapshotFile(env, path).ok());
  }

  CloudEnv restored;
  ASSERT_TRUE(LoadSnapshotFile(path, &restored).ok());
  engine::WarehouseConfig config;
  config.strategy = index::StrategyKind::kLUP;
  engine::Warehouse warehouse(&restored, config);
  ASSERT_TRUE(warehouse.AttachToExistingCloud().ok());
  EXPECT_GT(warehouse.document_uris().size(), 40u);
  auto outcome = warehouse.ExecuteQuery(
      "//painting[/name~'Lion', //painter/name/last:val]");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().result.rows, original.result.rows);
  EXPECT_EQ(outcome.value().docs_fetched, original.docs_fetched);
  std::remove(path.c_str());
}

// Version 2 rounds-trips the chaos state: injector stream cursors and
// circuit-breaker trackers survive, so the whole snapshot re-serializes
// byte-identically from the restored environment.
TEST(SnapshotTest, ChaosStateRoundTripsByteIdentically) {
  CloudConfig config;
  config.faults.seed = 11;
  config.faults.s3.error_probability = 0.2;
  CloudEnv env(config);
  Agent agent;
  ASSERT_TRUE(env.s3().CreateBucket("b").ok());
  for (int i = 0; i < 20; ++i) {
    // Faulted puts advance the injector streams; the injected errors
    // themselves are irrelevant here.
    (void)env.s3().Put(agent, "b", "k" + std::to_string(i), "v");
  }
  ASSERT_FALSE(env.fault_injector().SaveStreams().empty());
  for (int i = 0; i < env.config().breaker.failure_threshold; ++i) {
    env.breaker().RecordFailure("idx-table", agent.now());
  }
  ASSERT_EQ(env.breaker().state("idx-table"), BreakerState::kOpen);
  env.breaker().RecordSuccess("healthy-table");

  const std::string snapshot = SerializeSnapshot(env);
  CloudEnv restored(config);
  ASSERT_TRUE(RestoreSnapshot(snapshot, &restored).ok());
  EXPECT_EQ(restored.breaker().state("idx-table"), BreakerState::kOpen);
  EXPECT_EQ(restored.breaker().state("healthy-table"), BreakerState::kClosed);
  EXPECT_EQ(restored.fault_injector().SaveStreams(),
            env.fault_injector().SaveStreams());
  EXPECT_EQ(SerializeSnapshot(restored), snapshot);
}

// Version-1 snapshots (no chaos sections) still restore; the chaos state
// simply starts fresh.
TEST(SnapshotTest, LegacyV1SnapshotsStillRestore) {
  // A minimal v1 image: magic plus six zero varints (no buckets, no
  // objects, empty DynamoDB and SimpleDB sections).
  std::string v1 = "WDXSNAP1";
  v1.append(6, '\0');
  CloudEnv restored;
  ASSERT_TRUE(RestoreSnapshot(v1, &restored).ok());
  EXPECT_TRUE(restored.s3().Empty());
  EXPECT_TRUE(restored.dynamodb().Empty());
  EXPECT_TRUE(restored.fault_injector().SaveStreams().empty());
  CloudEnv fresh;
  EXPECT_TRUE(RestoreSnapshot(v1 + "x", &fresh).IsCorruption());
}

// The point of saving chaos state: a faulted run snapshotted mid-way and
// resumed in a fresh process draws the identical continuation of its
// fault schedule — same answers, same makespan, same fault counters and
// dollars as the run that never stopped.
TEST(SnapshotTest, MidRunChaosResumeIsDeterministic) {
  CloudConfig config;
  config.faults.seed = 5;
  // S3 stays fault-free so the post-restore attach (an unretried LIST)
  // cannot be the variable; DynamoDB and SQS chaos exercises the
  // restored streams during the query phase.
  config.faults.dynamodb.error_probability = 0.15;
  config.faults.dynamodb.throttle_share = 0.6;
  config.faults.sqs.error_probability = 0.05;
  config.faults.sqs.delay_probability = 0.2;
  config.faults.sqs.max_delay = kMicrosPerSecond;
  const std::vector<std::string> workload = {
      "//painting[/name~'Lion', //painter/name/last:val]",
      "//painting[/year:val, /museum]"};
  engine::WarehouseConfig wh;
  wh.strategy = index::StrategyKind::kLUP;

  // Run A: index under chaos, snapshot, then keep going with queries.
  CloudEnv env_a(config);
  engine::Warehouse warehouse_a(&env_a, wh);
  ASSERT_TRUE(warehouse_a.Setup().ok());
  for (const auto& doc : xmark::GeneratePaintings()) {
    ASSERT_TRUE(warehouse_a.SubmitDocument(doc.uri, doc.text).ok());
  }
  ASSERT_TRUE(warehouse_a.RunIndexers().ok());
  const std::string snapshot = SerializeSnapshot(env_a);
  const Usage before_a = env_a.meter().Snapshot();
  auto run_a = warehouse_a.ExecuteQueries(workload);
  ASSERT_TRUE(run_a.ok()) << run_a.status().ToString();
  const Usage delta_a = env_a.meter().Snapshot() - before_a;

  // Run B: restore into a fresh cloud and run the same queries.
  CloudEnv env_b(config);
  ASSERT_TRUE(RestoreSnapshot(snapshot, &env_b).ok());
  engine::Warehouse warehouse_b(&env_b, wh);
  ASSERT_TRUE(warehouse_b.AttachToExistingCloud().ok());
  const Usage before_b = env_b.meter().Snapshot();
  auto run_b = warehouse_b.ExecuteQueries(workload);
  ASSERT_TRUE(run_b.ok()) << run_b.status().ToString();
  const Usage delta_b = env_b.meter().Snapshot() - before_b;

  // The chaos plan actually bit during the resumed phase.
  EXPECT_GT(delta_a.faulted_requests, 0u);

  ASSERT_EQ(run_a.value().outcomes.size(), run_b.value().outcomes.size());
  for (size_t i = 0; i < run_a.value().outcomes.size(); ++i) {
    EXPECT_EQ(run_a.value().outcomes[i].result.rows,
              run_b.value().outcomes[i].result.rows)
        << "query " << i;
  }
  EXPECT_EQ(run_a.value().makespan, run_b.value().makespan);
  EXPECT_EQ(delta_a.faulted_requests, delta_b.faulted_requests);
  EXPECT_EQ(delta_a.retried_requests, delta_b.retried_requests);
  EXPECT_EQ(delta_a.sqs_requests, delta_b.sqs_requests);
  EXPECT_DOUBLE_EQ(env_a.meter().ComputeBill(delta_a).total(),
                   env_b.meter().ComputeBill(delta_b).total());
}

TEST(SnapshotTest, MissingFileFails) {
  CloudEnv env;
  EXPECT_TRUE(
      LoadSnapshotFile("/tmp/definitely-not-there.bin", &env).IsIOError());
}

}  // namespace
}  // namespace webdex::cloud
