#include <gtest/gtest.h>

#include "cloud/object_store.h"

namespace webdex::cloud {
namespace {

class TestAgent : public SimAgent {};

class ObjectStoreTest : public ::testing::Test {
 protected:
  ObjectStoreTest() : meter_(Pricing()), store_(Config(), &meter_) {
    EXPECT_TRUE(store_.CreateBucket("b").ok());
  }

  static ObjectStoreConfig Config() {
    ObjectStoreConfig config;
    config.request_latency = 10'000;                   // 10 ms
    config.bandwidth_bytes_per_sec = 1'000'000;        // 1 MB/s
    return config;
  }

  UsageMeter meter_;
  ObjectStore store_;
  TestAgent agent_;
};

TEST_F(ObjectStoreTest, PutGetRoundTrip) {
  ASSERT_TRUE(store_.Put(agent_, "b", "k", "hello").ok());
  auto got = store_.Get(agent_, "b", "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "hello");
}

TEST_F(ObjectStoreTest, GetMissingIsNotFoundAndBilled) {
  auto got = store_.Get(agent_, "b", "nope");
  EXPECT_TRUE(got.status().IsNotFound());
  EXPECT_EQ(meter_.usage().s3_get_requests, 1u);
}

TEST_F(ObjectStoreTest, MissingBucketFails) {
  EXPECT_TRUE(store_.Put(agent_, "nope", "k", "v").IsNotFound());
  EXPECT_TRUE(store_.Get(agent_, "nope", "k").status().IsNotFound());
}

TEST_F(ObjectStoreTest, DuplicateBucketFails) {
  EXPECT_TRUE(store_.CreateBucket("b").IsAlreadyExists());
}

TEST_F(ObjectStoreTest, PutReplacesAndTracksBytes) {
  ASSERT_TRUE(store_.Put(agent_, "b", "k", "12345").ok());
  EXPECT_EQ(store_.BucketBytes("b"), 5u);
  ASSERT_TRUE(store_.Put(agent_, "b", "k", "123").ok());
  EXPECT_EQ(store_.BucketBytes("b"), 3u);
  EXPECT_EQ(store_.ObjectCount("b"), 1u);
}

TEST_F(ObjectStoreTest, LatencyChargedToAgent) {
  // 1 MB at 1 MB/s = 1 s, plus 10 ms request latency.
  std::string megabyte(1'000'000, 'x');
  ASSERT_TRUE(store_.Put(agent_, "b", "big", std::move(megabyte)).ok());
  EXPECT_EQ(agent_.now(), 1'010'000);
}

TEST_F(ObjectStoreTest, MeterCountsRequestsAndBytes) {
  ASSERT_TRUE(store_.Put(agent_, "b", "k", "abcd").ok());
  ASSERT_TRUE(store_.Get(agent_, "b", "k").ok());
  EXPECT_EQ(meter_.usage().s3_put_requests, 1u);
  EXPECT_EQ(meter_.usage().s3_get_requests, 1u);
  EXPECT_EQ(meter_.usage().s3_bytes_in, 4u);
  EXPECT_EQ(meter_.usage().s3_bytes_out, 4u);
}

TEST_F(ObjectStoreTest, BatchGetParallelStreamsReduceMakespan) {
  std::string blob(1'000'000, 'x');  // 1 s transfer each
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store_.Put(agent_, "b", "k" + std::to_string(i), blob).ok());
  }
  TestAgent serial, parallel;
  auto r1 = store_.BatchGet(serial, "b", {"k0", "k1", "k2", "k3"}, 1);
  ASSERT_TRUE(r1.ok());
  auto r4 = store_.BatchGet(parallel, "b", {"k0", "k1", "k2", "k3"}, 4);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r1.value().size(), 4u);
  EXPECT_EQ(r4.value().size(), 4u);
  // 4 transfers over 4 streams finish ~4x faster than over 1.
  EXPECT_NEAR(static_cast<double>(serial.now()) / parallel.now(), 4.0, 0.1);
}

TEST_F(ObjectStoreTest, BatchGetMissingKeyFails) {
  ASSERT_TRUE(store_.Put(agent_, "b", "k0", "x").ok());
  auto r = store_.BatchGet(agent_, "b", {"k0", "missing"}, 2);
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(ObjectStoreTest, BatchGetRejectsZeroStreams) {
  EXPECT_TRUE(
      store_.BatchGet(agent_, "b", {"k"}, 0).status().IsInvalidArgument());
}

TEST_F(ObjectStoreTest, ListReturnsPrefixedKeysInOrder) {
  ASSERT_TRUE(store_.Put(agent_, "b", "doc-2", "x").ok());
  ASSERT_TRUE(store_.Put(agent_, "b", "doc-1", "x").ok());
  ASSERT_TRUE(store_.Put(agent_, "b", "other", "x").ok());
  auto keys = store_.List(agent_, "b", "doc-");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys.value(), (std::vector<std::string>{"doc-1", "doc-2"}));
}

TEST_F(ObjectStoreTest, DeleteRemovesObject) {
  ASSERT_TRUE(store_.Put(agent_, "b", "k", "x").ok());
  ASSERT_TRUE(store_.Delete(agent_, "b", "k").ok());
  EXPECT_FALSE(store_.Exists("b", "k"));
  EXPECT_TRUE(store_.Get(agent_, "b", "k").status().IsNotFound());
}

TEST_F(ObjectStoreTest, TotalBytesAcrossBuckets) {
  ASSERT_TRUE(store_.CreateBucket("c").ok());
  ASSERT_TRUE(store_.Put(agent_, "b", "k", "12").ok());
  ASSERT_TRUE(store_.Put(agent_, "c", "k", "345").ok());
  EXPECT_EQ(store_.TotalBytes(), 5u);
}

}  // namespace
}  // namespace webdex::cloud
