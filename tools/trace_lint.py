#!/usr/bin/env python3
"""Lints the observability surface of a live webdex_cli binary.

Checks (docs/OBSERVABILITY.md):
  * every metric name the binary exposes obeys the documented grammar
      name    := segment ('.' segment)+      -- at least two segments
      segment := [a-z0-9_]+                  -- first segment starts [a-z]
  * the Prometheus exposition is consistent with the JSON dump: every
    counter/gauge appears as webdex_<dots-to-underscores> with the same
    value, every histogram emits _bucket{le=...}/_sum/_count lines;
  * a one-shot trace emits well-formed JSONL: ordinal ids, parents that
    precede their children, end >= start, non-negative `usd` attrs, and
    parent usd covering the sum of its children's;
  * a scripted mutable-corpus session (upsert + delete + compact --full,
    docs/MUTABILITY.md) emits a `compact.pass` span whose JSONL obeys the
    same invariants — in particular the pass's usd covers the billed sum
    of its child retry spans;
  * every `admission.*` / `autoscale.*` span obeys the overload taxonomy
    (docs/OVERLOAD.md): only the documented names, each with its required
    attrs, `admission.shed` spans never billed (shed queries do no loser
    work), `autoscale.scale` spans carrying the capacity move — and the
    generic parent-covers-children usd invariant applies to them like any
    other span;
  * an autoscaled scripted session reports the overload counters in
    `stats` with the provisioned capacity held inside the configured
    bounds, and exposes the `autoscale.*` gauges in the metrics dump;
  * every `replica.*` / `shard.*` / `deploy.*` span obeys the deployment
    taxonomy (docs/ARCHITECTURES.md): only the documented names, each
    with its required attrs;
  * a sharded + replicated scripted session exposes the `deploy.*`
    gauges, the per-shard `service.<svc>.<op>.s<shard>.count` counters,
    the replica read pool's counters and lag histogram, records at least
    one replica.read span in a traced query, and reports the deployment
    line in `stats`.

Usage: trace_lint.py <path-to-webdex_cli>
Exit code 0 on a clean lint; failures are listed on stderr.
"""

import json
import re
import subprocess
import sys
import tempfile

METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
QUERY = "//item[/name:val]"

# The overload span taxonomy (docs/OVERLOAD.md): span name -> attrs it
# must carry.  Any other admission.*/autoscale.* name is a lint failure —
# new overload spans must be documented here and in OVERLOAD.md.
OVERLOAD_SPANS = {
    "admission.shed": {"query_id", "waited_us"},
    "autoscale.scale": {
        "write_units_before",
        "read_units_before",
        "write_units",
        "read_units",
        "up",
    },
}

# The deployment span taxonomy (docs/ARCHITECTURES.md): span name ->
# attrs it must carry.  Any other replica.*/shard.*/deploy.* name is a
# lint failure — new deployment spans must be documented here and in
# ARCHITECTURES.md.
DEPLOY_SPANS = {
    "replica.read": {"replica"},
    "shard.fanout": {"shards"},
}

errors = []


def fail(msg):
    errors.append(msg)


def run(binary, *args):
    result = subprocess.run(
        [binary, *args], capture_output=True, text=True, timeout=300
    )
    if result.returncode != 0:
        sys.stderr.write(result.stdout + result.stderr)
        sys.exit(f"{' '.join(args)}: exit {result.returncode}")
    return result.stdout


def lint_names(dump):
    names = (
        list(dump["counters"])
        + list(dump["gauges"])
        + list(dump["histograms"])
    )
    if not names:
        fail("metrics dump is empty")
    for name in names:
        if not METRIC_NAME.match(name):
            fail(f"metric name violates the grammar: {name!r}")
    return names


def lint_prometheus(dump, text):
    lines = [l for l in text.splitlines() if l.startswith("webdex_")]
    if not lines:
        fail("no webdex_-prefixed lines in the Prometheus exposition")
    body = "\n".join(lines)
    for name, value in dump["counters"].items():
        prom = "webdex_" + name.replace(".", "_")
        if not re.search(rf"^{re.escape(prom)} {value}$", body, re.M):
            fail(f"counter {name} missing from Prometheus as '{prom} {value}'")
    for name in dump["gauges"]:
        prom = "webdex_" + name.replace(".", "_")
        if not re.search(rf"^{re.escape(prom)} ", body, re.M):
            fail(f"gauge {name} missing from Prometheus as '{prom}'")
    for name, h in dump["histograms"].items():
        prom = "webdex_" + name.replace(".", "_")
        for suffix in ("_bucket{le=", "_sum", "_count"):
            if prom + suffix not in body:
                fail(f"histogram {name} missing Prometheus '{prom}{suffix}'")
        if not re.search(rf"^{re.escape(prom)}_count {h['count']}$", body, re.M):
            fail(f"histogram {name} count mismatch in Prometheus")


def lint_overload_span(span):
    """Validates one admission.*/autoscale.* span against the taxonomy."""
    name = span["name"]
    attrs = span.get("attrs", {})
    required = OVERLOAD_SPANS.get(name)
    if required is None:
        fail(f"span name outside the overload taxonomy: {name!r}")
        return
    for key in sorted(required - set(attrs)):
        fail(f"{name} span {span['id']} missing required attr {key!r}")
    if name == "admission.shed":
        # Shedding is the whole point of not doing the work: a shed span
        # that billed anything charged for loser work.
        if attrs.get("usd", 0.0) != 0.0:
            fail(f"admission.shed span {span['id']} billed usd > 0")
        if attrs.get("waited_us", 0) < 0:
            fail(f"admission.shed span {span['id']} waited_us is negative")
    elif name == "autoscale.scale":
        if attrs.get("up") not in (0, 1):
            fail(f"autoscale.scale span {span['id']} attr up not in {{0,1}}")
        for key in ("write_units", "read_units"):
            if attrs.get(key, 0) <= 0:
                fail(f"autoscale.scale span {span['id']} has {key} <= 0")
        if (
            attrs.get("write_units") == attrs.get("write_units_before")
            and attrs.get("read_units") == attrs.get("read_units_before")
        ):
            fail(f"autoscale.scale span {span['id']} moved no capacity")


def lint_deploy_span(span):
    """Validates one replica.*/shard.*/deploy.* span against the taxonomy."""
    name = span["name"]
    attrs = span.get("attrs", {})
    required = DEPLOY_SPANS.get(name)
    if required is None:
        fail(f"span name outside the deployment taxonomy: {name!r}")
        return
    for key in sorted(required - set(attrs)):
        fail(f"{name} span {span['id']} missing required attr {key!r}")
    if name == "replica.read":
        if attrs.get("replica", -1) < 0:
            fail(f"replica.read span {span['id']} has replica < 0")
        if attrs.get("lag_us", 0) < 0:
            fail(f"replica.read span {span['id']} has lag_us < 0")
    elif name == "shard.fanout":
        if attrs.get("shards", 0) < 2:
            fail(f"shard.fanout span {span['id']} fans out to < 2 shards")


def lint_trace_jsonl(path, label="trace"):
    with open(path) as f:
        spans = [json.loads(line) for line in f if line.strip()]
    if not spans:
        fail(f"{label} JSONL is empty")
        return spans
    usd = {}
    child_usd = {}
    for ordinal, span in enumerate(spans, start=1):
        sid = span["id"]
        if sid != ordinal:
            fail(f"span ids are not creation ordinals: got {sid} at {ordinal}")
        if span["parent"] >= sid:
            fail(f"span {sid} has non-preceding parent {span['parent']}")
        if span["end_us"] < span["start_us"]:
            fail(f"span {sid} ({span['name']}) ends before it starts")
        attrs = span.get("attrs", {})
        usd[sid] = attrs.get("usd", 0.0)
        if usd[sid] < 0:
            fail(f"span {sid} ({span['name']}) has negative usd")
        for key in attrs:
            if key.startswith("usage.") and not METRIC_NAME.match(key):
                fail(f"span {sid} usage attr violates the grammar: {key!r}")
        if span["name"].startswith(("admission.", "autoscale.")):
            lint_overload_span(span)
        if span["name"].startswith(("replica.", "shard.", "deploy.")):
            lint_deploy_span(span)
        child_usd[span["parent"]] = child_usd.get(span["parent"], 0.0) + usd[sid]
    for span in spans:
        sid = span["id"]
        if sid in child_usd and usd[sid] + 1e-12 < child_usd[sid]:
            if span["name"] == "replica.read":
                # The one documented exception to parent-covers-children:
                # the read pool refunds half the read units *inside* the
                # replica.read span, below its fully-billed retry children
                # (docs/ARCHITECTURES.md).  The refund is at most half, so
                # the span still covers half its children's sum — and its
                # ancestors see the refunded delta, keeping them covered.
                if usd[sid] + 1e-12 < 0.5 * child_usd[sid]:
                    fail(
                        f"replica.read span {sid} usd {usd[sid]} refunds "
                        f"more than half its children's {child_usd[sid]}"
                    )
                continue
            fail(
                f"span {sid} ({span['name']}) usd {usd[sid]} smaller than "
                f"its children's sum {child_usd[sid]}"
            )
    return spans


def lint_compact_trace(binary):
    """Drives a mutable-corpus script session and lints the compact.pass
    span: present, billed (positive usd), and obeying the generic
    parent-covers-children usd invariant like every other span."""
    with tempfile.NamedTemporaryFile(
        suffix=".jsonl"
    ) as jsonl, tempfile.NamedTemporaryFile(
        mode="w", suffix=".webdex"
    ) as script:
        script.write(
            "strategy 2LUPI\n"
            "open\n"
            "gen 12 8\n"
            "index\n"
            "upsert xmark-000003.xml\n"
            "delete xmark-000005.xml\n"
            "index\n"
            f"compact --full --jsonl {jsonl.name}\n"
        )
        script.flush()
        run(binary, script.name)
        spans = lint_trace_jsonl(jsonl.name, label="compact trace")
    passes = [s for s in spans if s["name"] == "compact.pass"]
    if len(passes) != 1:
        fail(f"expected exactly one compact.pass span, got {len(passes)}")
        return
    attrs = passes[0].get("attrs", {})
    if attrs.get("usd", 0.0) <= 0:
        fail("compact.pass span is unbilled (usd <= 0)")
    if attrs.get("full") != 1:
        fail("compact --full span does not carry attr full=1")


def lint_autoscaled_session(binary):
    """Drives an autoscaled scripted session: the controller must own the
    provisioned capacity (stats reports it inside the configured bounds,
    not the store's 400 WU default), the overload counters must surface
    in `stats`, the autoscale.* gauges in the metrics dump, and any
    admission.*/autoscale.* spans in a traced query obey the taxonomy."""
    min_wu, max_wu = 5, 50
    with tempfile.NamedTemporaryFile(
        suffix=".jsonl"
    ) as jsonl, tempfile.NamedTemporaryFile(
        mode="w", suffix=".webdex"
    ) as script:
        script.write(
            f"autoscale --min {min_wu} --max {max_wu}\n"
            "strategy LUP\n"
            "open\n"
            "gen 12 8\n"
            "index\n"
            f"trace --jsonl {jsonl.name} {QUERY}\n"
            "metrics --json\n"
            "stats\n"
        )
        script.flush()
        out = run(binary, script.name)
        lint_trace_jsonl(jsonl.name, label="autoscaled trace")

    overload = re.search(
        r"overload: (\d+) throttled requests, (\d+) shed queries, "
        r"(\d+) scale events \((\d+) WU / \d+ RU provisioned\)",
        out,
    )
    if not overload:
        fail("stats is missing the overload counters line")
    else:
        provisioned_wu = int(overload.group(4))
        if not min_wu <= provisioned_wu <= max_wu:
            fail(
                f"autoscaled session provisions {provisioned_wu} WU, "
                f"outside the configured [{min_wu}, {max_wu}] bounds"
            )
    dump_lines = [
        l for l in out.splitlines() if l.startswith('{"counters"')
    ]
    if len(dump_lines) != 1:
        fail("autoscaled session metrics dump missing")
        return
    gauges = json.loads(dump_lines[0])["gauges"]
    for gauge in ("autoscale.write_units", "autoscale.read_units"):
        if gauge not in gauges:
            fail(f"autoscaled session does not expose gauge {gauge}")
    wu = gauges.get("autoscale.write_units", 0)
    if not min_wu <= wu <= max_wu:
        fail(f"gauge autoscale.write_units {wu} outside bounds")


def lint_sharded_session(binary):
    """Drives a sharded + replicated scripted session: the deploy gauges,
    per-shard service counters, replica-pool counters and lag histogram
    must surface in the metrics dump, a traced query must record at least
    one taxonomy-clean replica.read span (the 1 ms lag leaves the pool
    caught up by query time), and `stats` must report the deployment."""
    with tempfile.NamedTemporaryFile(
        suffix=".jsonl"
    ) as jsonl, tempfile.NamedTemporaryFile(
        mode="w", suffix=".webdex"
    ) as script:
        script.write(
            "arch --shards 4 --replicas 2 --lag-ms 1\n"
            "strategy LUP\n"
            "open\n"
            "gen 12 8\n"
            "index\n"
            f"trace --jsonl {jsonl.name} {QUERY}\n"
            "metrics --json\n"
            "stats\n"
        )
        script.flush()
        out = run(binary, script.name)
        spans = lint_trace_jsonl(jsonl.name, label="sharded trace")

    if not any(s["name"] == "replica.read" for s in spans):
        fail("sharded session trace recorded no replica.read span")

    if not re.search(
        r"deployment: prov-s4-r2 \(4 shard\(s\), 2 replica\(s\), "
        r"provisioned capacity",
        out,
    ):
        fail("stats is missing the deployment line")

    dump_lines = [l for l in out.splitlines() if l.startswith('{"counters"')]
    if len(dump_lines) != 1:
        fail("sharded session metrics dump missing")
        return
    dump = json.loads(dump_lines[0])
    lint_names(dump)
    gauges = dump["gauges"]
    for gauge, expected in (
        ("deploy.shards", 4),
        ("deploy.replicas", 2),
        ("deploy.ondemand", 0),
        ("deploy.replication_lag_us", 1000),
    ):
        if gauges.get(gauge) != expected:
            fail(
                f"sharded session gauge {gauge} is "
                f"{gauges.get(gauge)!r}, expected {expected}"
            )
    counters = dump["counters"]
    for counter in ("shard.route.count", "replica.reads.count"):
        if counters.get(counter, 0) <= 0:
            fail(f"sharded session counter {counter} did not count")
    per_shard = re.compile(r"^service\.[a-z0-9_]+\.[a-z0-9_]+\.s\d+\.count$")
    if not any(per_shard.match(name) for name in counters):
        fail("sharded session exposes no per-shard service.* counters")
    if "replica.lag_us" not in dump["histograms"]:
        fail("sharded session is missing the replica.lag_us histogram")


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    binary = sys.argv[1]

    json_out = run(binary, "metrics", QUERY, "--json")
    dump_lines = [l for l in json_out.splitlines() if l.startswith('{"counters"')]
    if len(dump_lines) != 1:
        sys.exit("could not locate the JSON metrics dump in the output")
    dump = json.loads(dump_lines[0])
    names = lint_names(dump)

    prom_out = run(binary, "metrics", QUERY, "--prometheus")
    lint_prometheus(dump, prom_out)

    with tempfile.NamedTemporaryFile(suffix=".jsonl") as tmp:
        run(binary, "trace", "--jsonl", tmp.name, QUERY)
        lint_trace_jsonl(tmp.name)

    lint_compact_trace(binary)
    lint_autoscaled_session(binary)
    lint_sharded_session(binary)

    if errors:
        for e in errors:
            print(f"trace_lint: {e}", file=sys.stderr)
        sys.exit(1)
    print(
        f"trace_lint: {len(names)} metric names clean, trace JSONL clean, "
        "compact.pass clean, autoscaled session clean, sharded session "
        "clean"
    )


if __name__ == "__main__":
    main()
