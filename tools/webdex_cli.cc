// webdex_cli — interactive driver for the simulated warehouse.
//
// Reads commands from stdin (or from a script file given as argv[1]);
// `help` lists them.  A typical session:
//
//   $ ./webdex_cli
//   webdex> strategy LUP
//   webdex> open
//   webdex> gen 60
//   webdex> index
//   webdex> query //item[/name:val, /mailbox/mail]
//   webdex> bill
//   webdex> quit

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "cloud/cloud_env.h"
#include "cloud/snapshot.h"
#include "common/strings.h"
#include "cost/cost_model.h"
#include "engine/warehouse.h"
#include "index/intern.h"
#include "index/summary.h"
#include "query/parser.h"
#include "query/xquery.h"
#include "xmark/xmark_generator.h"
#include "xml/parser.h"

namespace webdex::tools {
namespace {

class Cli {
 public:
  explicit Cli(bool interactive) : interactive_(interactive) {}

  int Run(std::istream& in) {
    if (interactive_) PrintBanner();
    std::string line;
    while (Prompt(), std::getline(in, line)) {
      if (!Dispatch(line)) break;
    }
    return 0;
  }

 private:
  void PrintBanner() {
    std::printf(
        "webdex — Web data indexing in the (simulated) cloud.\n"
        "Type 'help' for commands.\n");
  }

  void Prompt() {
    if (interactive_) {
      std::printf("webdex> ");
      std::fflush(stdout);
    }
  }

  // Returns false to quit.
  bool Dispatch(const std::string& line) {
    std::istringstream input(line);
    std::string command;
    if (!(input >> command) || command[0] == '#') return true;
    std::string rest;
    std::getline(input, rest);
    rest = std::string(Trim(rest));

    if (command == "quit" || command == "exit") return false;
    if (command == "help") {
      Help();
    } else if (command == "strategy") {
      SetStrategy(rest);
    } else if (command == "backend") {
      SetBackend(rest);
    } else if (command == "instances") {
      config_.num_instances = std::max(1, std::atoi(rest.c_str()));
      std::printf("fleet: %d instance(s)\n", config_.num_instances);
    } else if (command == "threads") {
      config_.host_threads = std::max(0, std::atoi(rest.c_str()));
      if (config_.host_threads == 0) {
        std::printf("host threads: auto (one per core)\n");
      } else {
        std::printf("host threads: %d%s\n", config_.host_threads,
                    config_.host_threads == 1 ? " (serial)" : "");
      }
    } else if (command == "type") {
      config_.instance_type = (rest == "XL" || rest == "xl")
                                  ? cloud::InstanceType::kExtraLarge
                                  : cloud::InstanceType::kLarge;
      std::printf("instance type: %s\n",
                  cloud::InstanceTypeName(config_.instance_type));
    } else if (command == "faults") {
      SetFaults(rest);
    } else if (command == "outage") {
      SetOutage(rest);
    } else if (command == "autoscale") {
      SetAutoscale(rest);
    } else if (command == "arch") {
      SetArch(rest);
    } else if (command == "compare-arch") {
      CompareArch(rest);
    } else if (command == "scrub") {
      Scrub(rest);
    } else if (command == "upsert") {
      Upsert(rest);
    } else if (command == "delete") {
      Delete(rest);
    } else if (command == "compact") {
      Compact(rest);
    } else if (command == "generations") {
      Generations();
    } else if (command == "dlq") {
      Dlq(rest);
    } else if (command == "open") {
      Open();
    } else if (command == "load") {
      Load(rest);
    } else if (command == "loaddir") {
      LoadDir(rest);
    } else if (command == "gen") {
      Generate(rest);
    } else if (command == "index") {
      Index();
    } else if (command == "query") {
      RunQuery(rest);
    } else if (command == "trace") {
      Trace(rest);
    } else if (command == "metrics") {
      Metrics(rest);
    } else if (command == "explain") {
      Explain(rest);
    } else if (command == "planner") {
      SetPlanner(rest);
    } else if (command == "xquery") {
      ShowXQuery(rest);
    } else if (command == "advise") {
      Advise(rest);
    } else if (command == "save") {
      Save(rest);
    } else if (command == "restore") {
      Restore(rest);
    } else if (command == "bill") {
      Bill();
    } else if (command == "stats") {
      Stats();
    } else if (command == "docs") {
      Docs();
    } else {
      std::printf("unknown command '%s' — try 'help'\n", command.c_str());
    }
    return true;
  }

  void Help() {
    std::printf(
        "  strategy LU|LUP|LUI|2LUPI|none   pick the indexing strategy\n"
        "  backend dynamodb|simpledb        pick the index store\n"
        "  instances <n>                    fleet size\n"
        "  threads <n>                      host extraction threads\n"
        "                                   (0 = auto, 1 = serial;\n"
        "                                   wall-clock only, results and\n"
        "                                   virtual times are identical)\n"
        "  type L|XL                        instance type\n"
        "  faults <error_prob> [seed]       chaos plan for the next 'open':\n"
        "                                   transient faults, duplicates and\n"
        "                                   delays at that rate (0 = off)\n"
        "  outage <svc> <start_s> <end_s>   add a sustained outage of\n"
        "                                   s3|dynamodb|simpledb|sqs to the\n"
        "                                   plan (virtual-time window;\n"
        "                                   applies at the next 'open')\n"
        "  autoscale off|[--min <wu>] [--max <wu>] [--target <util>]\n"
        "                                   reactive DynamoDB capacity\n"
        "                                   autoscaler between min/max write\n"
        "                                   units at the target utilization\n"
        "                                   (read bounds scale with them;\n"
        "                                   docs/OVERLOAD.md; applies at the\n"
        "                                   next 'open')\n"
        "  arch [--shards <n>] [--replicas <r>]\n"
        "       [--capacity provisioned|ondemand] [--lag-ms <ms>]\n"
        "                                   deployment architecture\n"
        "                                   (docs/ARCHITECTURES.md; applies\n"
        "                                   at the next 'open'; no flags =\n"
        "                                   back to the paper's default)\n"
        "  compare-arch [--shards <a,b>] [--replicas <a,b>]\n"
        "               [--capacity provisioned,ondemand]\n"
        "                                   sweep architectures over one\n"
        "                                   deterministic build + query\n"
        "                                   workload and print the\n"
        "                                   cost/makespan frontier (every\n"
        "                                   row must match the baseline's\n"
        "                                   index state and query rows)\n"
        "  scrub [--repair]                 audit the index against the\n"
        "                                   documents; --repair fixes it\n"
        "  upsert <uri> [file.xml]          queue a document replacement at\n"
        "                                   a fresh generation (no file:\n"
        "                                   deterministic XMark content);\n"
        "                                   run 'index' to apply\n"
        "  delete <uri>                     queue a tombstoning delete;\n"
        "                                   run 'index' to apply\n"
        "  compact [--full] [--jsonl <f>]   garbage-collect superseded\n"
        "                                   generations and tombstones;\n"
        "                                   --full also rewrites upserted\n"
        "                                   documents back to canonical\n"
        "                                   generation-0 postings; --jsonl\n"
        "                                   writes the pass's trace spans\n"
        "  generations                      list mutated documents, their\n"
        "                                   live generations and tombstones\n"
        "  dlq drain                        re-drive dead-lettered messages\n"
        "  open                             create the warehouse\n"
        "  load <uri> <file.xml>            load one local XML file\n"
        "  loaddir <dir>                    load every .xml file in a dir\n"
        "  gen <n> [entities] [split]       generate an XMark corpus\n"
        "  index                            run the indexing fleet\n"
        "  query <tree pattern query>       evaluate a query\n"
        "  trace [--jsonl <file>] <query>   evaluate a query with tracing\n"
        "                                   on and print the span tree's\n"
        "                                   cost rollup (every subtree's\n"
        "                                   dollars = the metered sum of\n"
        "                                   its children); --jsonl also\n"
        "                                   writes the raw spans to a file\n"
        "  metrics [--prometheus|--json]    dump the metric registry\n"
        "                                   (docs/OBSERVABILITY.md)\n"
        "  explain <tree pattern query>     show the logical and physical\n"
        "                                   plans with every access path's\n"
        "                                   cost estimate (nothing billed)\n"
        "  planner on|off|force-lup|force-lui|auto\n"
        "                                   cost-based access-path planning\n"
        "                                   (applies at the next 'open')\n"
        "  xquery <tree pattern query>      show the XQuery translation\n"
        "  advise <query>                   LUP-vs-LUI advice from stats\n"
        "  save <file>                      snapshot S3+index to disk\n"
        "  restore <file>                   reopen a saved snapshot\n"
        "  bill | stats | docs              inspect the deployment\n"
        "  quit\n");
  }

  void SetStrategy(const std::string& name) {
    if (name == "none") {
      config_.use_index = false;
      std::printf("strategy: none (full scans)\n");
      return;
    }
    config_.use_index = true;
    for (index::StrategyKind kind : index::AllStrategyKinds()) {
      if (name == index::StrategyKindName(kind)) {
        config_.strategy = kind;
        std::printf("strategy: %s\n", name.c_str());
        return;
      }
    }
    std::printf("unknown strategy '%s'\n", name.c_str());
  }

  void SetBackend(const std::string& name) {
    config_.backend = (name == "simpledb") ? engine::IndexBackend::kSimpleDb
                                           : engine::IndexBackend::kDynamoDb;
    std::printf("index backend: %s\n",
                config_.backend == engine::IndexBackend::kSimpleDb
                    ? "SimpleDB"
                    : "DynamoDB");
  }

  void SetFaults(const std::string& args) {
    std::istringstream input(args);
    double error_probability = 0;
    if (!(input >> error_probability) || error_probability < 0 ||
        error_probability > 1) {
      std::printf("usage: faults <error_prob in [0,1]> [seed]\n");
      return;
    }
    cloud::FaultPlan plan;
    if (uint64_t seed; input >> seed) plan.seed = seed;
    plan.s3.error_probability = error_probability;
    plan.dynamodb.error_probability = error_probability;
    plan.dynamodb.unprocessed_probability = error_probability;
    plan.sqs.error_probability = error_probability;
    plan.sqs.duplicate_probability = error_probability;
    plan.sqs.delay_probability = error_probability;
    plan.sqs.max_delay = 2 * cloud::kMicrosPerSecond;
    cloud_config_.faults = plan;
    if (plan.Any()) {
      std::printf(
          "fault plan: %.1f%% transient faults per attempt (seed %llu); "
          "applies at the next 'open'\n",
          error_probability * 100.0, (unsigned long long)plan.seed);
    } else {
      std::printf("fault plan: off\n");
    }
    if (warehouse_ != nullptr) {
      std::printf("note: the open warehouse keeps its current plan\n");
    }
  }

  void SetOutage(const std::string& args) {
    std::istringstream input(args);
    std::string service;
    double start_s = 0, end_s = 0;
    cloud::OutageWindow window;
    if (!(input >> service >> start_s >> end_s) || end_s <= start_s) {
      std::printf("usage: outage <s3|dynamodb|simpledb|sqs> <start_s> "
                  "<end_s>\n");
      return;
    }
    if (service == "s3") {
      window.service = cloud::ServiceId::kS3;
    } else if (service == "dynamodb") {
      window.service = cloud::ServiceId::kDynamoDb;
    } else if (service == "simpledb") {
      window.service = cloud::ServiceId::kSimpleDb;
    } else if (service == "sqs") {
      window.service = cloud::ServiceId::kSqs;
    } else {
      std::printf("unknown service '%s'\n", service.c_str());
      return;
    }
    window.start = static_cast<cloud::Micros>(
        start_s * cloud::kMicrosPerSecond);
    window.end = static_cast<cloud::Micros>(end_s * cloud::kMicrosPerSecond);
    cloud_config_.faults.outages.push_back(window);
    std::printf(
        "outage: %s down for virtual [%.1f s, %.1f s); applies at the "
        "next 'open'\n",
        cloud::ServiceIdName(window.service), start_s, end_s);
    if (warehouse_ != nullptr) {
      std::printf("note: the open warehouse keeps its current plan\n");
    }
  }

  void SetAutoscale(const std::string& args) {
    if (args == "off") {
      cloud_config_.autoscale = cloud::AutoscalerConfig();
      std::printf("autoscale: off\n");
      return;
    }
    cloud::AutoscalerConfig scale;
    scale.enabled = true;
    std::istringstream input(args);
    std::string flag;
    bool bad = false;
    while (input >> flag) {
      double value = 0;
      if (!(input >> value) || value <= 0) {
        bad = true;
        break;
      }
      if (flag == "--min") {
        scale.min_write_units = value;
      } else if (flag == "--max") {
        scale.max_write_units = value;
      } else if (flag == "--target") {
        bad = value >= 1.0;
        scale.target_utilization = value;
      } else {
        bad = true;
        break;
      }
    }
    if (bad || scale.min_write_units > scale.max_write_units) {
      std::printf(
          "usage: autoscale off | [--min <wu>] [--max <wu>] "
          "[--target <util in (0,1)>]\n");
      return;
    }
    // Read bounds track the write bounds at the default 1:0.625 ratio
    // (100/3200 WU vs 50/2000 RU) so one pair of flags drives both
    // dimensions.
    scale.min_read_units = scale.min_write_units * 0.5;
    scale.max_read_units = scale.max_write_units * 0.625;
    cloud_config_.autoscale = scale;
    std::printf(
        "autoscale: on, %.0f-%.0f write units at %.0f%% target "
        "utilization; applies at the next 'open'\n",
        scale.min_write_units, scale.max_write_units,
        scale.target_utilization * 100.0);
    if (warehouse_ != nullptr) {
      std::printf("note: the open warehouse keeps its current capacity\n");
    }
  }

  static bool ParseCapacity(const std::string& name,
                            cloud::CapacityMode* mode) {
    if (name == "provisioned" || name == "prov") {
      *mode = cloud::CapacityMode::kProvisioned;
    } else if (name == "ondemand" || name == "on-demand") {
      *mode = cloud::CapacityMode::kOnDemand;
    } else {
      return false;
    }
    return true;
  }

  void SetArch(const std::string& args) {
    cloud::ArchitectureSpec arch;  // no flags resets to the default
    std::istringstream input(args);
    std::string flag;
    bool bad = false;
    while (input >> flag) {
      std::string value;
      if (!(input >> value)) {
        bad = true;
        break;
      }
      if (flag == "--shards") {
        arch.shards = std::atoi(value.c_str());
      } else if (flag == "--replicas") {
        arch.replicas = std::atoi(value.c_str());
      } else if (flag == "--capacity") {
        bad = !ParseCapacity(value, &arch.capacity);
      } else if (flag == "--lag-ms") {
        arch.replication_lag = static_cast<cloud::Micros>(
            std::atof(value.c_str()) * 1000.0);
      } else {
        bad = true;
      }
      if (bad) break;
    }
    if (!bad && !arch.Validate().ok()) {
      std::printf("invalid architecture: %s\n",
                  arch.Validate().ToString().c_str());
      return;
    }
    if (bad) {
      std::printf(
          "usage: arch [--shards <1..64>] [--replicas <0..8>] "
          "[--capacity provisioned|ondemand] [--lag-ms <ms>]\n");
      return;
    }
    cloud_config_.arch = arch;
    std::printf(
        "architecture: %s (%d shard(s), %d replica(s), %s capacity, "
        "%.1f ms replication lag); applies at the next 'open'\n",
        arch.Name().c_str(), arch.shards, arch.replicas,
        cloud::CapacityModeName(arch.capacity),
        static_cast<double>(arch.replication_lag) / 1000.0);
    if (warehouse_ != nullptr) {
      std::printf("note: the open warehouse keeps its current layout\n");
    }
  }

  /// One architecture's turn on the compare-arch workload.
  struct ArchRow {
    cloud::ArchitectureSpec arch;
    double dollars = 0;
    double index_s = 0;
    double query_s = 0;
    uint64_t fingerprint = 0;
    std::vector<std::vector<std::string>> rows;
    bool failed = false;
  };

  ArchRow RunArchWorkload(const cloud::ArchitectureSpec& arch) {
    ArchRow row;
    row.arch = arch;
    cloud::CloudConfig cloud_config = cloud_config_;
    cloud_config.arch = arch;
    auto env = std::make_unique<cloud::CloudEnv>(cloud_config);
    auto warehouse =
        std::make_unique<engine::Warehouse>(env.get(), config_);
    if (!warehouse->Setup().ok()) {
      row.failed = true;
      return row;
    }
    xmark::GeneratorConfig corpus;
    corpus.num_documents = 12;
    corpus.entities_per_document = 8;
    xmark::XmarkGenerator generator(corpus);
    for (int i = 0; i < corpus.num_documents; ++i) {
      auto doc = generator.Generate(i);
      if (!warehouse->SubmitDocument(doc.uri, std::move(doc.text)).ok()) {
        row.failed = true;
        return row;
      }
    }
    auto report = warehouse->RunIndexers();
    if (!report.ok()) {
      row.failed = true;
      return row;
    }
    row.index_s = static_cast<double>(report.value().makespan) / 1e6;
    // The same query three times: with replicas the later rounds run
    // against a settled table and show the half-price read pool.
    for (int round = 0; round < 3; ++round) {
      auto outcome = warehouse->ExecuteQuery("//item[/name:val]");
      if (!outcome.ok()) {
        row.failed = true;
        return row;
      }
      row.query_s +=
          static_cast<double>(outcome.value().timings.total) / 1e6;
      row.rows = outcome.value().result.rows;
    }
    row.fingerprint = cloud::FingerprintStore(warehouse->index_store());
    row.dollars = env->meter().ComputeBill().total();
    return row;
  }

  void CompareArch(const std::string& args) {
    std::vector<int> shards = {1, 4};
    std::vector<int> replicas = {0, 2};
    std::vector<cloud::CapacityMode> capacities = {
        cloud::CapacityMode::kProvisioned, cloud::CapacityMode::kOnDemand};
    std::istringstream input(args);
    std::string flag;
    bool bad = false;
    auto parse_ints = [&](const std::string& csv, std::vector<int>* out) {
      out->clear();
      std::istringstream list(csv);
      std::string token;
      while (std::getline(list, token, ',')) {
        out->push_back(std::atoi(token.c_str()));
      }
      return !out->empty();
    };
    while (input >> flag) {
      std::string value;
      if (!(input >> value)) {
        bad = true;
        break;
      }
      if (flag == "--shards") {
        bad = !parse_ints(value, &shards);
      } else if (flag == "--replicas") {
        bad = !parse_ints(value, &replicas);
      } else if (flag == "--capacity") {
        capacities.clear();
        std::istringstream list(value);
        std::string token;
        while (std::getline(list, token, ',')) {
          cloud::CapacityMode mode;
          if (!ParseCapacity(token, &mode)) {
            bad = true;
            break;
          }
          capacities.push_back(mode);
        }
        bad = bad || capacities.empty();
      } else {
        bad = true;
      }
      if (bad) break;
    }
    if (bad) {
      std::printf(
          "usage: compare-arch [--shards <a,b,..>] [--replicas <a,b,..>] "
          "[--capacity provisioned,ondemand]\n");
      return;
    }
    // Baseline first, then the cross product (skipping the baseline).
    std::vector<cloud::ArchitectureSpec> sweep;
    sweep.emplace_back();
    for (cloud::CapacityMode capacity : capacities) {
      for (int shard_count : shards) {
        for (int replica_count : replicas) {
          cloud::ArchitectureSpec arch;
          arch.capacity = capacity;
          arch.shards = shard_count;
          arch.replicas = replica_count;
          if (arch == sweep.front()) continue;
          if (!arch.Validate().ok()) {
            std::printf("skipping invalid architecture %s\n",
                        arch.Name().c_str());
            continue;
          }
          sweep.push_back(arch);
        }
      }
    }
    std::printf(
        "%-16s %-12s %7s %9s %11s %9s %9s  %s\n", "arch", "capacity",
        "shards", "replicas", "$ total", "index s", "query s", "state");
    ArchRow baseline;
    for (size_t i = 0; i < sweep.size(); ++i) {
      const ArchRow row = RunArchWorkload(sweep[i]);
      if (i == 0) baseline = row;
      const char* state = "baseline";
      if (row.failed) {
        state = "FAILED";
      } else if (i > 0) {
        state = (row.fingerprint == baseline.fingerprint &&
                 row.rows == baseline.rows)
                    ? "ok"
                    : "MISMATCH";
      }
      std::printf("%-16s %-12s %7d %9d %11.6f %9.2f %9.3f  %s\n",
                  row.arch.Name().c_str(),
                  cloud::CapacityModeName(row.arch.capacity),
                  row.arch.shards, row.arch.replicas, row.dollars,
                  row.index_s, row.query_s, state);
    }
    std::printf(
        "every row indexes and queries the same corpus; 'ok' = "
        "bit-identical logical index and query rows vs the baseline\n");
  }

  void Scrub(const std::string& args) {
    if (!Opened()) return;
    if (!config_.use_index) {
      std::printf("no index to scrub (strategy none)\n");
      return;
    }
    const bool repair = args == "--repair";
    if (!args.empty() && !repair) {
      std::printf("usage: scrub [--repair]\n");
      return;
    }
    const cloud::Usage before = env_->meter().Snapshot();
    auto report = warehouse_->Scrub(repair);
    if (!report.ok()) {
      std::printf("scrub failed: %s\n", report.status().ToString().c_str());
      return;
    }
    const double dollars =
        env_->meter().ComputeBill(env_->meter().Snapshot() - before).total();
    std::printf("%s  cost: $%.6f\n", report.value().ToString().c_str(),
                dollars);
  }

  void Upsert(const std::string& args) {
    if (!Opened()) return;
    std::istringstream input(args);
    std::string uri, path;
    if (!(input >> uri)) {
      std::printf("usage: upsert <uri> [file.xml]\n");
      return;
    }
    std::string text;
    if (input >> path) {
      std::ifstream file(path, std::ios::binary);
      if (!file) {
        std::printf("cannot open %s\n", path.c_str());
        return;
      }
      std::ostringstream contents;
      contents << file.rdbuf();
      text = std::move(contents).str();
    } else {
      // No file: generate deterministic replacement content, varied by
      // the allocated generation so successive upserts of one URI differ.
      xmark::GeneratorConfig corpus;
      corpus.num_documents = 1;
      corpus.entities_per_document = 8;
      corpus.split_sections = true;
      corpus.seed += env_->maintenance().generation_watermark + 1;
      text = xmark::XmarkGenerator(corpus).Generate(0).text;
    }
    if (auto status = warehouse_->UpsertDocument(uri, std::move(text));
        !status.ok()) {
      std::printf("upsert %s failed: %s\n", uri.c_str(),
                  status.ToString().c_str());
      return;
    }
    std::printf("upsert queued for %s at generation %llu — run 'index' to "
                "apply\n",
                uri.c_str(),
                (unsigned long long)env_->maintenance().generation_watermark);
  }

  void Delete(const std::string& args) {
    if (!Opened()) return;
    std::istringstream input(args);
    std::string uri;
    if (!(input >> uri)) {
      std::printf("usage: delete <uri>\n");
      return;
    }
    if (auto status = warehouse_->DeleteDocument(uri); !status.ok()) {
      std::printf("delete %s failed: %s\n", uri.c_str(),
                  status.ToString().c_str());
      return;
    }
    std::printf("delete queued for %s at generation %llu — run 'index' to "
                "apply\n",
                uri.c_str(),
                (unsigned long long)env_->maintenance().generation_watermark);
  }

  void Compact(const std::string& args) {
    if (!Opened()) return;
    bool full = false;
    std::string jsonl_path;
    std::istringstream input(args);
    std::string token;
    while (input >> token) {
      if (token == "--full") {
        full = true;
      } else if (token == "--jsonl" && input >> jsonl_path) {
      } else {
        std::printf("usage: compact [--full] [--jsonl <file>]\n");
        return;
      }
    }
    common::Tracer& tracer = env_->tracer();
    const bool was_enabled = tracer.enabled();
    if (!jsonl_path.empty()) {
      tracer.set_enabled(true);
      tracer.Clear();
    }
    const cloud::Usage before = env_->meter().Snapshot();
    auto report = warehouse_->Compact(full);
    tracer.set_enabled(was_enabled);
    if (!report.ok()) {
      std::printf("compact failed: %s\n", report.status().ToString().c_str());
      return;
    }
    const double dollars =
        env_->meter().ComputeBill(env_->meter().Snapshot() - before).total();
    std::printf("%s  cost: $%.6f\n", report.value().ToString().c_str(),
                dollars);
    if (report.value().crashed) {
      std::printf("  crashed mid-pass — cursor saved; 'compact' again (or "
                  "save/restore) to resume\n");
    }
    if (!jsonl_path.empty()) {
      std::ofstream out(jsonl_path, std::ios::binary);
      if (!out) {
        std::printf("cannot write %s\n", jsonl_path.c_str());
        return;
      }
      out << tracer.ToJsonl();
      std::printf("spans written to %s\n", jsonl_path.c_str());
    }
  }

  void Generations() {
    if (!Opened()) return;
    const auto view = warehouse_->GenerationSnapshot();
    for (const auto& [uri, info] : view->entries()) {
      std::printf("  %-28s gen %llu%s\n", uri.c_str(),
                  (unsigned long long)info.generation,
                  info.tombstoned ? "  [tombstone]" : "");
    }
    std::printf("%zu mutated document(s), %llu tombstone(s); watermark "
                "%llu%s\n",
                view->size(), (unsigned long long)view->TombstoneCount(),
                (unsigned long long)env_->maintenance().generation_watermark,
                env_->maintenance().compact_cursor.empty()
                    ? ""
                    : "; compaction paused");
  }

  void Dlq(const std::string& args) {
    if (!Opened()) return;
    if (args != "drain") {
      std::printf("usage: dlq drain\n");
      return;
    }
    auto drained = warehouse_->DrainDeadLetters();
    if (!drained.ok()) {
      std::printf("drain failed: %s\n", drained.status().ToString().c_str());
      return;
    }
    std::printf("re-drove %llu dead-lettered message(s)%s\n",
                (unsigned long long)drained.value(),
                drained.value() > 0
                    ? " — run 'index' or 'query' to process them"
                    : "");
  }

  bool Opened() {
    if (warehouse_ == nullptr) {
      std::printf("no warehouse — run 'open' first\n");
      return false;
    }
    return true;
  }

  void Open() {
    if (warehouse_ != nullptr) {
      std::printf("warehouse already open\n");
      return;
    }
    env_ = std::make_unique<cloud::CloudEnv>(cloud_config_);
    warehouse_ = std::make_unique<engine::Warehouse>(env_.get(), config_);
    if (auto status = warehouse_->Setup(); !status.ok()) {
      std::printf("setup failed: %s\n", status.ToString().c_str());
      warehouse_.reset();
      env_.reset();
      return;
    }
    std::printf("warehouse open (%s, %d x %s, %s)\n",
                config_.use_index
                    ? index::StrategyKindName(config_.strategy)
                    : "no index",
                config_.num_instances,
                cloud::InstanceTypeName(config_.instance_type),
                config_.backend == engine::IndexBackend::kSimpleDb
                    ? "SimpleDB"
                    : "DynamoDB");
  }

  void Submit(const std::string& uri, std::string text) {
    // Feed the statistics summary before the text is moved out.
    if (auto doc = xml::ParseDocument(uri, text); doc.ok()) {
      summary_.AddDocument(index::ExtractDocIndex(doc.value()));
    }
    if (auto status = warehouse_->SubmitDocument(uri, std::move(text));
        !status.ok()) {
      std::printf("load %s failed: %s\n", uri.c_str(),
                  status.ToString().c_str());
    }
  }

  void Load(const std::string& args) {
    if (!Opened()) return;
    std::istringstream input(args);
    std::string uri, path;
    if (!(input >> uri >> path)) {
      std::printf("usage: load <uri> <file.xml>\n");
      return;
    }
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      std::printf("cannot open %s\n", path.c_str());
      return;
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    Submit(uri, std::move(contents).str());
    std::printf("loaded %s (%zu documents total)\n", uri.c_str(),
                warehouse_->document_uris().size());
  }

  void LoadDir(const std::string& dir) {
    if (!Opened()) return;
    namespace fs = std::filesystem;
    std::error_code ec;
    size_t loaded = 0;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (!entry.is_regular_file() || entry.path().extension() != ".xml") {
        continue;
      }
      std::ifstream file(entry.path(), std::ios::binary);
      if (!file) continue;
      std::ostringstream contents;
      contents << file.rdbuf();
      Submit(entry.path().filename().string(), std::move(contents).str());
      ++loaded;
    }
    if (ec) {
      std::printf("cannot read %s: %s\n", dir.c_str(),
                  ec.message().c_str());
      return;
    }
    std::printf("loaded %zu file(s) from %s\n", loaded, dir.c_str());
  }

  void Generate(const std::string& args) {
    if (!Opened()) return;
    std::istringstream input(args);
    xmark::GeneratorConfig corpus;
    corpus.num_documents = 60;
    corpus.entities_per_document = 40;
    input >> corpus.num_documents >> corpus.entities_per_document;
    std::string mode;
    input >> mode;
    corpus.split_sections = mode != "full";
    xmark::XmarkGenerator generator(corpus);
    for (int i = 0; i < corpus.num_documents; ++i) {
      auto doc = generator.Generate(i);
      Submit(doc.uri, std::move(doc.text));
    }
    std::printf("generated %d XMark documents (%.1f MB)\n",
                corpus.num_documents,
                static_cast<double>(warehouse_->data_bytes()) / (1 << 20));
  }

  void Index() {
    if (!Opened()) return;
    auto report = warehouse_->RunIndexers();
    if (!report.ok()) {
      std::printf("indexing failed: %s\n",
                  report.status().ToString().c_str());
      return;
    }
    std::printf(
        "indexed %llu documents in %.2f virtual s "
        "(index %.1f MB + %.1f MB overhead)\n",
        (unsigned long long)report.value().documents,
        static_cast<double>(report.value().makespan) / 1e6,
        static_cast<double>(warehouse_->IndexRawBytes()) / (1 << 20),
        static_cast<double>(warehouse_->IndexOverheadBytes()) / (1 << 20));
  }

  void RunQuery(const std::string& text) {
    if (!Opened()) return;
    if (text.empty()) {
      std::printf("usage: query <tree pattern query>\n");
      return;
    }
    const cloud::Usage before = env_->meter().Snapshot();
    auto outcome = warehouse_->ExecuteQuery(text);
    if (!outcome.ok()) {
      std::printf("query failed: %s\n", outcome.status().ToString().c_str());
      return;
    }
    const double dollars =
        env_->meter().ComputeBill(env_->meter().Snapshot() - before).total();
    std::printf("%zu row(s); fetched %llu docs in %.3f virtual s for "
                "$%.6f\n",
                outcome.value().result.rows.size(),
                (unsigned long long)outcome.value().docs_fetched,
                static_cast<double>(outcome.value().timings.total) / 1e6,
                dollars);
    if (!outcome.value().chosen_path.empty()) {
      std::printf("  path %s  est $%.8f (%.0f req)  actual $%.8f (%.0f req)"
                  "%s\n",
                  outcome.value().chosen_path.c_str(),
                  outcome.value().estimated_cost_usd,
                  outcome.value().estimated_requests,
                  outcome.value().actual_cost_usd,
                  outcome.value().actual_requests,
                  outcome.value().planner_fallbacks > 0 ? "  [fell back]"
                                                        : "");
    }
    const size_t limit = 10;
    for (size_t r = 0; r < outcome.value().result.rows.size(); ++r) {
      if (r == limit) {
        std::printf("  ... (%zu more)\n",
                    outcome.value().result.rows.size() - limit);
        break;
      }
      std::string row;
      for (const auto& col : outcome.value().result.rows[r]) {
        if (!row.empty()) row += " | ";
        row += col.substr(0, 60);
      }
      std::printf("  %s\n", row.c_str());
    }
  }

  void Trace(const std::string& args) {
    if (!Opened()) return;
    std::string text = args;
    std::string jsonl_path;
    if (text.rfind("--jsonl", 0) == 0) {
      std::istringstream input(text);
      std::string flag;
      input >> flag >> jsonl_path;
      std::getline(input, text);
      text = std::string(Trim(text));
      if (jsonl_path.empty()) {
        std::printf("usage: trace [--jsonl <file>] <tree pattern query>\n");
        return;
      }
    }
    if (text.empty()) {
      std::printf("usage: trace [--jsonl <file>] <tree pattern query>\n");
      return;
    }
    common::Tracer& tracer = env_->tracer();
    const bool was_enabled = tracer.enabled();
    tracer.set_enabled(true);
    tracer.Clear();
    auto outcome = warehouse_->ExecuteQuery(text);
    tracer.set_enabled(was_enabled);
    if (!outcome.ok()) {
      std::printf("query failed: %s\n", outcome.status().ToString().c_str());
      return;
    }
    std::printf("%zu row(s); %zu span(s) recorded\n",
                outcome.value().result.rows.size(), tracer.spans().size());
    std::printf("%s", tracer.CostRollup().c_str());
    if (!jsonl_path.empty()) {
      std::ofstream out(jsonl_path, std::ios::binary);
      if (!out) {
        std::printf("cannot write %s\n", jsonl_path.c_str());
        return;
      }
      out << tracer.ToJsonl();
      std::printf("spans written to %s\n", jsonl_path.c_str());
    }
  }

  void Metrics(const std::string& args) {
    if (!Opened()) return;
    // Usage is the billing source of truth; mirror it into the registry
    // so one dump carries both service metrics and billing counters.
    env_->PublishUsageMetrics();
    // Same for the key/path interner: snapshot its arena and probe stats
    // (index.intern.*) into the registry for this dump.
    index::PublishInternMetrics(&env_->metrics());
    if (args == "--prometheus") {
      std::printf("%s", env_->metrics().ToPrometheus().c_str());
    } else if (args.empty() || args == "--json") {
      std::printf("%s\n", env_->metrics().ToJson().c_str());
    } else {
      std::printf("usage: metrics [--prometheus|--json]\n");
    }
  }

  void Explain(const std::string& text) {
    if (!Opened()) return;
    if (text.empty()) {
      std::printf("usage: explain <tree pattern query>\n");
      return;
    }
    auto explained = warehouse_->ExplainQuery(text);
    if (!explained.ok()) {
      std::printf("explain failed: %s\n",
                  explained.status().ToString().c_str());
      return;
    }
    std::printf("%s", explained.value().c_str());
  }

  void SetPlanner(const std::string& args) {
    if (args == "on" || args == "auto") {
      config_.use_planner = true;
      config_.planner_force = engine::PlannerForce::kAuto;
    } else if (args == "off") {
      config_.use_planner = false;
      config_.planner_force = engine::PlannerForce::kAuto;
    } else if (args == "force-lup") {
      config_.use_planner = true;
      config_.planner_force = engine::PlannerForce::kLup;
    } else if (args == "force-lui") {
      config_.use_planner = true;
      config_.planner_force = engine::PlannerForce::kLui;
    } else {
      std::printf("usage: planner on|off|force-lup|force-lui|auto\n");
      return;
    }
    std::printf("planner: %s\n",
                config_.use_planner
                    ? engine::PlannerForceName(config_.planner_force)
                    : "off (fixed strategy pipeline)");
    if (warehouse_ != nullptr) {
      std::printf("note: the open warehouse keeps its current planner\n");
    }
  }

  void ShowXQuery(const std::string& text) {
    auto query = query::ParseQuery(text);
    if (!query.ok()) {
      std::printf("parse failed: %s\n", query.status().ToString().c_str());
      return;
    }
    std::printf("%s\n", query::ToXQuery(query.value()).c_str());
  }

  void Advise(const std::string& text) {
    auto query = query::ParseQuery(text);
    if (!query.ok()) {
      std::printf("parse failed: %s\n", query.status().ToString().c_str());
      return;
    }
    if (summary_.documents() == 0) {
      std::printf("no statistics yet — load documents first\n");
      return;
    }
    for (const auto& pattern : query.value().patterns()) {
      const auto advice = summary_.AdviseLookup(pattern);
      std::printf("%s -> %s (%s)\n", pattern.ToString().c_str(),
                  index::StrategyKindName(advice.lookup),
                  advice.reason.c_str());
    }
  }

  void Save(const std::string& path) {
    if (!Opened()) return;
    if (path.empty()) {
      std::printf("usage: save <file>\n");
      return;
    }
    if (auto status = cloud::SaveSnapshotFile(*env_, path); !status.ok()) {
      std::printf("save failed: %s\n", status.ToString().c_str());
      return;
    }
    std::printf("snapshot written to %s\n", path.c_str());
  }

  void Restore(const std::string& path) {
    if (warehouse_ != nullptr) {
      std::printf("a warehouse is already open — restart to restore\n");
      return;
    }
    auto env = std::make_unique<cloud::CloudEnv>(cloud_config_);
    if (auto status = cloud::LoadSnapshotFile(path, env.get());
        !status.ok()) {
      std::printf("restore failed: %s\n", status.ToString().c_str());
      return;
    }
    env_ = std::move(env);
    warehouse_ = std::make_unique<engine::Warehouse>(env_.get(), config_);
    if (auto status = warehouse_->AttachToExistingCloud(); !status.ok()) {
      std::printf("attach failed: %s\n", status.ToString().c_str());
      warehouse_.reset();
      env_.reset();
      return;
    }
    std::printf("restored %zu documents (%.1f MB) from %s\n",
                warehouse_->document_uris().size(),
                static_cast<double>(warehouse_->data_bytes()) / (1 << 20),
                path.c_str());
  }

  void Bill() {
    if (!Opened()) return;
    std::printf("%s", env_->meter().ComputeBill().ToString().c_str());
  }

  void Stats() {
    if (!Opened()) return;
    // Counters are read back through the metric registry (the usage meter
    // stays the billing source of truth; PublishUsageMetrics mirrors it
    // into `usage.*` gauges — observability_test.cc cross-checks the two).
    env_->PublishUsageMetrics();
    const common::MetricRegistry& metrics = env_->metrics();
    const auto usage = [&metrics](const char* field) {
      return (unsigned long long)metrics.GaugeValue(std::string("usage.") +
                                                    field);
    };
    std::printf(
        "documents: %zu (%.1f MB)   distinct paths: %llu\n"
        "S3: %llu put / %llu get   DynamoDB: %llu put / %llu get "
        "(%.0f WU / %.0f RU)   SQS: %llu\n"
        "faults: %llu injected, %llu retries, %llu redeliveries, "
        "%llu dead-lettered\n"
        "brownout: breaker %llu opens / %llu closes / %llu short-circuits, "
        "%llu degraded queries, %llu scrub-repaired\n"
        "mutability: %llu tombstones written, %llu compacted URIs, "
        "%llu GC'd items\n"
        "overload: %llu throttled requests, %llu shed queries, "
        "%llu scale events (%.0f WU / %.0f RU provisioned)\n"
        "deployment: %s (%d shard(s), %d replica(s), %s capacity, "
        "%.1f ms lag): %llu replica reads, %llu on-demand requests\n"
        "virtual front-end clock: %.2f s\n",
        warehouse_->document_uris().size(),
        static_cast<double>(warehouse_->data_bytes()) / (1 << 20),
        (unsigned long long)summary_.distinct_paths(),
        usage("s3_put_requests"), usage("s3_get_requests"),
        usage("ddb_put_requests"), usage("ddb_get_requests"),
        metrics.GaugeValue("usage.ddb_write_units"),
        metrics.GaugeValue("usage.ddb_read_units"), usage("sqs_requests"),
        usage("faulted_requests"), usage("retried_requests"),
        usage("sqs_redeliveries"), usage("dead_lettered"),
        usage("breaker_opens"), usage("breaker_closes"),
        usage("breaker_short_circuits"), usage("degraded_queries"),
        usage("scrub_repaired"), usage("tombstones_written"),
        usage("compact_uris"), usage("compact_gc_items"),
        usage("throttled_requests"), usage("shed_queries"),
        usage("scale_events"), env_->dynamodb().write_units_per_second(),
        env_->dynamodb().read_units_per_second(),
        env_->deployment().spec().Name().c_str(),
        env_->deployment().spec().shards, env_->deployment().spec().replicas,
        cloud::CapacityModeName(env_->deployment().spec().capacity),
        static_cast<double>(env_->deployment().spec().replication_lag) /
            1000.0,
        usage("replica_reads"), usage("ondemand_requests"),
        static_cast<double>(warehouse_->front_end().now()) / 1e6);
    if (!env_->tracer().spans().empty()) {
      std::printf("last trace (flamegraph-style cost rollup):\n%s",
                  env_->tracer().CostRollup().c_str());
    }
  }

  void Docs() {
    if (!Opened()) return;
    const auto& uris = warehouse_->document_uris();
    for (size_t i = 0; i < uris.size() && i < 20; ++i) {
      std::printf("  %s\n", uris[i].c_str());
    }
    if (uris.size() > 20) std::printf("  ... (%zu more)\n", uris.size() - 20);
  }

  bool interactive_;
  engine::WarehouseConfig config_;
  cloud::CloudConfig cloud_config_;
  std::unique_ptr<cloud::CloudEnv> env_;
  std::unique_ptr<engine::Warehouse> warehouse_;
  index::PathSummary summary_;
};

}  // namespace
}  // namespace webdex::tools

int main(int argc, char** argv) {
  if (argc > 2 && (std::string(argv[1]) == "trace" ||
                   std::string(argv[1]) == "metrics")) {
    // One-shot trace/metrics: deploy a small deterministic 2LUPI
    // warehouse, run the query with tracing on, and print the cost
    // rollup (trace) or the metric registry (metrics <query> [--fmt]).
    std::string query;
    std::string fmt;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--prometheus" || arg == "--json") {
        fmt = arg;
        continue;
      }
      if (!query.empty()) query += " ";
      query += arg;
    }
    std::string script = "strategy 2LUPI\nopen\ngen 12 8\nindex\n";
    if (std::string(argv[1]) == "trace") {
      script += "trace " + query + "\n";
    } else {
      script += "query " + query + "\nmetrics " + fmt + "\n";
    }
    std::istringstream input(script);
    webdex::tools::Cli cli(/*interactive=*/false);
    return cli.Run(input);
  }
  if (argc > 1 && std::string(argv[1]) == "compare-arch") {
    // One-shot frontier: sweep architectures over the canned workload.
    std::string flags;
    for (int i = 2; i < argc; ++i) {
      if (!flags.empty()) flags += " ";
      flags += argv[i];
    }
    std::istringstream script("compare-arch " + flags + "\n");
    webdex::tools::Cli cli(/*interactive=*/false);
    return cli.Run(script);
  }
  if (argc > 2 && std::string(argv[1]) == "explain") {
    // One-shot EXPLAIN: deploy a small deterministic 2LUPI warehouse and
    // plan the query against it (nothing beyond the canned corpus is
    // billed by the explain itself).
    std::string query;
    for (int i = 2; i < argc; ++i) {
      if (!query.empty()) query += " ";
      query += argv[i];
    }
    std::istringstream script("strategy 2LUPI\nopen\ngen 12 8\nindex\n"
                              "explain " +
                              query + "\n");
    webdex::tools::Cli cli(/*interactive=*/false);
    return cli.Run(script);
  }
  if (argc > 1) {
    std::ifstream script(argv[1]);
    if (!script) {
      std::fprintf(stderr, "cannot open script %s\n", argv[1]);
      return 1;
    }
    webdex::tools::Cli cli(/*interactive=*/false);
    return cli.Run(script);
  }
  webdex::tools::Cli cli(/*interactive=*/true);
  return cli.Run(std::cin);
}
