# Empty compiler generated dependencies file for bench_ablation_pathcompress.
# This may be replaced when dependencies are built.
