file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pathcompress.dir/bench_ablation_pathcompress.cc.o"
  "CMakeFiles/bench_ablation_pathcompress.dir/bench_ablation_pathcompress.cc.o.d"
  "bench_ablation_pathcompress"
  "bench_ablation_pathcompress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pathcompress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
