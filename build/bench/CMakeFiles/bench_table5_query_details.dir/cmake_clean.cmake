file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_query_details.dir/bench_table5_query_details.cc.o"
  "CMakeFiles/bench_table5_query_details.dir/bench_table5_query_details.cc.o.d"
  "bench_table5_query_details"
  "bench_table5_query_details.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_query_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
