# Empty compiler generated dependencies file for bench_table5_query_details.
# This may be replaced when dependencies are built.
