# Empty compiler generated dependencies file for bench_table4_indexing_time.
# This may be replaced when dependencies are built.
