
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig13_amortization.cc" "bench/CMakeFiles/bench_fig13_amortization.dir/bench_fig13_amortization.cc.o" "gcc" "bench/CMakeFiles/bench_fig13_amortization.dir/bench_fig13_amortization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xmark/CMakeFiles/webdex_xmark.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/webdex_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/webdex_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/webdex_index.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/webdex_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/webdex_query.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/webdex_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/webdex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
