# Empty compiler generated dependencies file for bench_table7_8_simpledb.
# This may be replaced when dependencies are built.
