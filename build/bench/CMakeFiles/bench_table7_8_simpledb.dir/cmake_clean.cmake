file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_8_simpledb.dir/bench_table7_8_simpledb.cc.o"
  "CMakeFiles/bench_table7_8_simpledb.dir/bench_table7_8_simpledb.cc.o.d"
  "bench_table7_8_simpledb"
  "bench_table7_8_simpledb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_8_simpledb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
