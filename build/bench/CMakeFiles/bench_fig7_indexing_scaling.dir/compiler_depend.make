# Empty compiler generated dependencies file for bench_fig7_indexing_scaling.
# This may be replaced when dependencies are built.
