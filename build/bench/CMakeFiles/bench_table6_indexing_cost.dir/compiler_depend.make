# Empty compiler generated dependencies file for bench_table6_indexing_cost.
# This may be replaced when dependencies are built.
