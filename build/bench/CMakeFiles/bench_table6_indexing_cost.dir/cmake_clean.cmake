file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_indexing_cost.dir/bench_table6_indexing_cost.cc.o"
  "CMakeFiles/bench_table6_indexing_cost.dir/bench_table6_indexing_cost.cc.o.d"
  "bench_table6_indexing_cost"
  "bench_table6_indexing_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_indexing_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
