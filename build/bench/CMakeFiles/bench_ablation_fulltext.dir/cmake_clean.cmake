file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fulltext.dir/bench_ablation_fulltext.cc.o"
  "CMakeFiles/bench_ablation_fulltext.dir/bench_ablation_fulltext.cc.o.d"
  "bench_ablation_fulltext"
  "bench_ablation_fulltext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fulltext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
