# Empty dependencies file for bench_ablation_fulltext.
# This may be replaced when dependencies are built.
