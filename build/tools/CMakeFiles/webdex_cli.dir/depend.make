# Empty dependencies file for webdex_cli.
# This may be replaced when dependencies are built.
