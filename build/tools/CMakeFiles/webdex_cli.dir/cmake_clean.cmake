file(REMOVE_RECURSE
  "CMakeFiles/webdex_cli.dir/webdex_cli.cc.o"
  "CMakeFiles/webdex_cli.dir/webdex_cli.cc.o.d"
  "webdex_cli"
  "webdex_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdex_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
