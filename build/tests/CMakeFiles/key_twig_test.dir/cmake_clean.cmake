file(REMOVE_RECURSE
  "CMakeFiles/key_twig_test.dir/key_twig_test.cc.o"
  "CMakeFiles/key_twig_test.dir/key_twig_test.cc.o.d"
  "key_twig_test"
  "key_twig_test.pdb"
  "key_twig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_twig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
