# Empty dependencies file for key_twig_test.
# This may be replaced when dependencies are built.
