# Empty dependencies file for dynamodb_test.
# This may be replaced when dependencies are built.
