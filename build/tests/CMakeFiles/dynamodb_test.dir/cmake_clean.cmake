file(REMOVE_RECURSE
  "CMakeFiles/dynamodb_test.dir/dynamodb_test.cc.o"
  "CMakeFiles/dynamodb_test.dir/dynamodb_test.cc.o.d"
  "dynamodb_test"
  "dynamodb_test.pdb"
  "dynamodb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamodb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
