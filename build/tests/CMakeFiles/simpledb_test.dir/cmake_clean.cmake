file(REMOVE_RECURSE
  "CMakeFiles/simpledb_test.dir/simpledb_test.cc.o"
  "CMakeFiles/simpledb_test.dir/simpledb_test.cc.o.d"
  "simpledb_test"
  "simpledb_test.pdb"
  "simpledb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simpledb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
