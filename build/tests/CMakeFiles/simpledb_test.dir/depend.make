# Empty dependencies file for simpledb_test.
# This may be replaced when dependencies are built.
