file(REMOVE_RECURSE
  "CMakeFiles/path_match_test.dir/path_match_test.cc.o"
  "CMakeFiles/path_match_test.dir/path_match_test.cc.o.d"
  "path_match_test"
  "path_match_test.pdb"
  "path_match_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
