file(REMOVE_RECURSE
  "CMakeFiles/queue_service_test.dir/queue_service_test.cc.o"
  "CMakeFiles/queue_service_test.dir/queue_service_test.cc.o.d"
  "queue_service_test"
  "queue_service_test.pdb"
  "queue_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
