file(REMOVE_RECURSE
  "CMakeFiles/usage_test.dir/usage_test.cc.o"
  "CMakeFiles/usage_test.dir/usage_test.cc.o.d"
  "usage_test"
  "usage_test.pdb"
  "usage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
