# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/object_store_test[1]_include.cmake")
include("/root/repo/build/tests/queue_service_test[1]_include.cmake")
include("/root/repo/build/tests/dynamodb_test[1]_include.cmake")
include("/root/repo/build/tests/simpledb_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/xml_parser_test[1]_include.cmake")
include("/root/repo/build/tests/dom_test[1]_include.cmake")
include("/root/repo/build/tests/xmark_test[1]_include.cmake")
include("/root/repo/build/tests/query_parser_test[1]_include.cmake")
include("/root/repo/build/tests/xquery_test[1]_include.cmake")
include("/root/repo/build/tests/evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/extract_test[1]_include.cmake")
include("/root/repo/build/tests/key_twig_test[1]_include.cmake")
include("/root/repo/build/tests/message_test[1]_include.cmake")
include("/root/repo/build/tests/usage_test[1]_include.cmake")
include("/root/repo/build/tests/twig_join_test[1]_include.cmake")
include("/root/repo/build/tests/path_match_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_property_test[1]_include.cmake")
include("/root/repo/build/tests/strategy_test[1]_include.cmake")
include("/root/repo/build/tests/summary_test[1]_include.cmake")
include("/root/repo/build/tests/warehouse_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
