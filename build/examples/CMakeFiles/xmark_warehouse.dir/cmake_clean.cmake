file(REMOVE_RECURSE
  "CMakeFiles/xmark_warehouse.dir/xmark_warehouse.cpp.o"
  "CMakeFiles/xmark_warehouse.dir/xmark_warehouse.cpp.o.d"
  "xmark_warehouse"
  "xmark_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmark_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
