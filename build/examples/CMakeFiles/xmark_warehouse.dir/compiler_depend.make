# Empty compiler generated dependencies file for xmark_warehouse.
# This may be replaced when dependencies are built.
