file(REMOVE_RECURSE
  "CMakeFiles/museum_catalog.dir/museum_catalog.cpp.o"
  "CMakeFiles/museum_catalog.dir/museum_catalog.cpp.o.d"
  "museum_catalog"
  "museum_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/museum_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
