# Empty compiler generated dependencies file for museum_catalog.
# This may be replaced when dependencies are built.
