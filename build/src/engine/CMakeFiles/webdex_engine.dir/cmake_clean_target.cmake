file(REMOVE_RECURSE
  "libwebdex_engine.a"
)
