file(REMOVE_RECURSE
  "CMakeFiles/webdex_engine.dir/message.cc.o"
  "CMakeFiles/webdex_engine.dir/message.cc.o.d"
  "CMakeFiles/webdex_engine.dir/warehouse.cc.o"
  "CMakeFiles/webdex_engine.dir/warehouse.cc.o.d"
  "libwebdex_engine.a"
  "libwebdex_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdex_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
