# Empty compiler generated dependencies file for webdex_engine.
# This may be replaced when dependencies are built.
