file(REMOVE_RECURSE
  "libwebdex_xml.a"
)
