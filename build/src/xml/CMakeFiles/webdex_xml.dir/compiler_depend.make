# Empty compiler generated dependencies file for webdex_xml.
# This may be replaced when dependencies are built.
