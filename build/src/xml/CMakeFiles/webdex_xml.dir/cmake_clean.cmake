file(REMOVE_RECURSE
  "CMakeFiles/webdex_xml.dir/dom.cc.o"
  "CMakeFiles/webdex_xml.dir/dom.cc.o.d"
  "CMakeFiles/webdex_xml.dir/parser.cc.o"
  "CMakeFiles/webdex_xml.dir/parser.cc.o.d"
  "CMakeFiles/webdex_xml.dir/serializer.cc.o"
  "CMakeFiles/webdex_xml.dir/serializer.cc.o.d"
  "CMakeFiles/webdex_xml.dir/tokenizer.cc.o"
  "CMakeFiles/webdex_xml.dir/tokenizer.cc.o.d"
  "libwebdex_xml.a"
  "libwebdex_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdex_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
