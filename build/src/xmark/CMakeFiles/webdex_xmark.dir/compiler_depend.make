# Empty compiler generated dependencies file for webdex_xmark.
# This may be replaced when dependencies are built.
