file(REMOVE_RECURSE
  "CMakeFiles/webdex_xmark.dir/paintings.cc.o"
  "CMakeFiles/webdex_xmark.dir/paintings.cc.o.d"
  "CMakeFiles/webdex_xmark.dir/xmark_generator.cc.o"
  "CMakeFiles/webdex_xmark.dir/xmark_generator.cc.o.d"
  "libwebdex_xmark.a"
  "libwebdex_xmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdex_xmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
