file(REMOVE_RECURSE
  "libwebdex_xmark.a"
)
