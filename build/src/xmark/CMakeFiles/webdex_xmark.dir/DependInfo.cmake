
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xmark/paintings.cc" "src/xmark/CMakeFiles/webdex_xmark.dir/paintings.cc.o" "gcc" "src/xmark/CMakeFiles/webdex_xmark.dir/paintings.cc.o.d"
  "/root/repo/src/xmark/xmark_generator.cc" "src/xmark/CMakeFiles/webdex_xmark.dir/xmark_generator.cc.o" "gcc" "src/xmark/CMakeFiles/webdex_xmark.dir/xmark_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/webdex_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/webdex_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
