file(REMOVE_RECURSE
  "CMakeFiles/webdex_query.dir/evaluator.cc.o"
  "CMakeFiles/webdex_query.dir/evaluator.cc.o.d"
  "CMakeFiles/webdex_query.dir/parser.cc.o"
  "CMakeFiles/webdex_query.dir/parser.cc.o.d"
  "CMakeFiles/webdex_query.dir/tree_pattern.cc.o"
  "CMakeFiles/webdex_query.dir/tree_pattern.cc.o.d"
  "CMakeFiles/webdex_query.dir/xquery.cc.o"
  "CMakeFiles/webdex_query.dir/xquery.cc.o.d"
  "libwebdex_query.a"
  "libwebdex_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdex_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
