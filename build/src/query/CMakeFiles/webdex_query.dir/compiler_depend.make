# Empty compiler generated dependencies file for webdex_query.
# This may be replaced when dependencies are built.
