
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/evaluator.cc" "src/query/CMakeFiles/webdex_query.dir/evaluator.cc.o" "gcc" "src/query/CMakeFiles/webdex_query.dir/evaluator.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/webdex_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/webdex_query.dir/parser.cc.o.d"
  "/root/repo/src/query/tree_pattern.cc" "src/query/CMakeFiles/webdex_query.dir/tree_pattern.cc.o" "gcc" "src/query/CMakeFiles/webdex_query.dir/tree_pattern.cc.o.d"
  "/root/repo/src/query/xquery.cc" "src/query/CMakeFiles/webdex_query.dir/xquery.cc.o" "gcc" "src/query/CMakeFiles/webdex_query.dir/xquery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/webdex_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/webdex_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
