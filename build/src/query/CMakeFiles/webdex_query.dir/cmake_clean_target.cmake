file(REMOVE_RECURSE
  "libwebdex_query.a"
)
