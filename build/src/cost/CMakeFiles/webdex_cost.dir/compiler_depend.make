# Empty compiler generated dependencies file for webdex_cost.
# This may be replaced when dependencies are built.
