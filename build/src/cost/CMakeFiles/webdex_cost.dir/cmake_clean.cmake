file(REMOVE_RECURSE
  "CMakeFiles/webdex_cost.dir/advisor.cc.o"
  "CMakeFiles/webdex_cost.dir/advisor.cc.o.d"
  "CMakeFiles/webdex_cost.dir/cost_model.cc.o"
  "CMakeFiles/webdex_cost.dir/cost_model.cc.o.d"
  "libwebdex_cost.a"
  "libwebdex_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdex_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
