file(REMOVE_RECURSE
  "libwebdex_cost.a"
)
