file(REMOVE_RECURSE
  "CMakeFiles/webdex_cloud.dir/cluster.cc.o"
  "CMakeFiles/webdex_cloud.dir/cluster.cc.o.d"
  "CMakeFiles/webdex_cloud.dir/dynamodb.cc.o"
  "CMakeFiles/webdex_cloud.dir/dynamodb.cc.o.d"
  "CMakeFiles/webdex_cloud.dir/instance.cc.o"
  "CMakeFiles/webdex_cloud.dir/instance.cc.o.d"
  "CMakeFiles/webdex_cloud.dir/kv_store.cc.o"
  "CMakeFiles/webdex_cloud.dir/kv_store.cc.o.d"
  "CMakeFiles/webdex_cloud.dir/object_store.cc.o"
  "CMakeFiles/webdex_cloud.dir/object_store.cc.o.d"
  "CMakeFiles/webdex_cloud.dir/pricing.cc.o"
  "CMakeFiles/webdex_cloud.dir/pricing.cc.o.d"
  "CMakeFiles/webdex_cloud.dir/queue_service.cc.o"
  "CMakeFiles/webdex_cloud.dir/queue_service.cc.o.d"
  "CMakeFiles/webdex_cloud.dir/simpledb.cc.o"
  "CMakeFiles/webdex_cloud.dir/simpledb.cc.o.d"
  "CMakeFiles/webdex_cloud.dir/snapshot.cc.o"
  "CMakeFiles/webdex_cloud.dir/snapshot.cc.o.d"
  "CMakeFiles/webdex_cloud.dir/usage.cc.o"
  "CMakeFiles/webdex_cloud.dir/usage.cc.o.d"
  "libwebdex_cloud.a"
  "libwebdex_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdex_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
