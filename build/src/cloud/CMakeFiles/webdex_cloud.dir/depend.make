# Empty dependencies file for webdex_cloud.
# This may be replaced when dependencies are built.
