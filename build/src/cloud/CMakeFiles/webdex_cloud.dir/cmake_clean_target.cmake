file(REMOVE_RECURSE
  "libwebdex_cloud.a"
)
