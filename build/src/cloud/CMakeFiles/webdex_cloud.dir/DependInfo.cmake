
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/cluster.cc" "src/cloud/CMakeFiles/webdex_cloud.dir/cluster.cc.o" "gcc" "src/cloud/CMakeFiles/webdex_cloud.dir/cluster.cc.o.d"
  "/root/repo/src/cloud/dynamodb.cc" "src/cloud/CMakeFiles/webdex_cloud.dir/dynamodb.cc.o" "gcc" "src/cloud/CMakeFiles/webdex_cloud.dir/dynamodb.cc.o.d"
  "/root/repo/src/cloud/instance.cc" "src/cloud/CMakeFiles/webdex_cloud.dir/instance.cc.o" "gcc" "src/cloud/CMakeFiles/webdex_cloud.dir/instance.cc.o.d"
  "/root/repo/src/cloud/kv_store.cc" "src/cloud/CMakeFiles/webdex_cloud.dir/kv_store.cc.o" "gcc" "src/cloud/CMakeFiles/webdex_cloud.dir/kv_store.cc.o.d"
  "/root/repo/src/cloud/object_store.cc" "src/cloud/CMakeFiles/webdex_cloud.dir/object_store.cc.o" "gcc" "src/cloud/CMakeFiles/webdex_cloud.dir/object_store.cc.o.d"
  "/root/repo/src/cloud/pricing.cc" "src/cloud/CMakeFiles/webdex_cloud.dir/pricing.cc.o" "gcc" "src/cloud/CMakeFiles/webdex_cloud.dir/pricing.cc.o.d"
  "/root/repo/src/cloud/queue_service.cc" "src/cloud/CMakeFiles/webdex_cloud.dir/queue_service.cc.o" "gcc" "src/cloud/CMakeFiles/webdex_cloud.dir/queue_service.cc.o.d"
  "/root/repo/src/cloud/simpledb.cc" "src/cloud/CMakeFiles/webdex_cloud.dir/simpledb.cc.o" "gcc" "src/cloud/CMakeFiles/webdex_cloud.dir/simpledb.cc.o.d"
  "/root/repo/src/cloud/snapshot.cc" "src/cloud/CMakeFiles/webdex_cloud.dir/snapshot.cc.o" "gcc" "src/cloud/CMakeFiles/webdex_cloud.dir/snapshot.cc.o.d"
  "/root/repo/src/cloud/usage.cc" "src/cloud/CMakeFiles/webdex_cloud.dir/usage.cc.o" "gcc" "src/cloud/CMakeFiles/webdex_cloud.dir/usage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/webdex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
