
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/entry.cc" "src/index/CMakeFiles/webdex_index.dir/entry.cc.o" "gcc" "src/index/CMakeFiles/webdex_index.dir/entry.cc.o.d"
  "/root/repo/src/index/key_twig.cc" "src/index/CMakeFiles/webdex_index.dir/key_twig.cc.o" "gcc" "src/index/CMakeFiles/webdex_index.dir/key_twig.cc.o.d"
  "/root/repo/src/index/keys.cc" "src/index/CMakeFiles/webdex_index.dir/keys.cc.o" "gcc" "src/index/CMakeFiles/webdex_index.dir/keys.cc.o.d"
  "/root/repo/src/index/path_match.cc" "src/index/CMakeFiles/webdex_index.dir/path_match.cc.o" "gcc" "src/index/CMakeFiles/webdex_index.dir/path_match.cc.o.d"
  "/root/repo/src/index/strategy.cc" "src/index/CMakeFiles/webdex_index.dir/strategy.cc.o" "gcc" "src/index/CMakeFiles/webdex_index.dir/strategy.cc.o.d"
  "/root/repo/src/index/summary.cc" "src/index/CMakeFiles/webdex_index.dir/summary.cc.o" "gcc" "src/index/CMakeFiles/webdex_index.dir/summary.cc.o.d"
  "/root/repo/src/index/twig_join.cc" "src/index/CMakeFiles/webdex_index.dir/twig_join.cc.o" "gcc" "src/index/CMakeFiles/webdex_index.dir/twig_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/webdex_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/webdex_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/webdex_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/webdex_query.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
