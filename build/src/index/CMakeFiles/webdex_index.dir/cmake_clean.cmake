file(REMOVE_RECURSE
  "CMakeFiles/webdex_index.dir/entry.cc.o"
  "CMakeFiles/webdex_index.dir/entry.cc.o.d"
  "CMakeFiles/webdex_index.dir/key_twig.cc.o"
  "CMakeFiles/webdex_index.dir/key_twig.cc.o.d"
  "CMakeFiles/webdex_index.dir/keys.cc.o"
  "CMakeFiles/webdex_index.dir/keys.cc.o.d"
  "CMakeFiles/webdex_index.dir/path_match.cc.o"
  "CMakeFiles/webdex_index.dir/path_match.cc.o.d"
  "CMakeFiles/webdex_index.dir/strategy.cc.o"
  "CMakeFiles/webdex_index.dir/strategy.cc.o.d"
  "CMakeFiles/webdex_index.dir/summary.cc.o"
  "CMakeFiles/webdex_index.dir/summary.cc.o.d"
  "CMakeFiles/webdex_index.dir/twig_join.cc.o"
  "CMakeFiles/webdex_index.dir/twig_join.cc.o.d"
  "libwebdex_index.a"
  "libwebdex_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdex_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
