# Empty compiler generated dependencies file for webdex_index.
# This may be replaced when dependencies are built.
