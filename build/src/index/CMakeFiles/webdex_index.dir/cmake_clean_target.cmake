file(REMOVE_RECURSE
  "libwebdex_index.a"
)
