# Empty dependencies file for webdex_common.
# This may be replaced when dependencies are built.
