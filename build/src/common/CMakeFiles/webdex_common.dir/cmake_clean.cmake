file(REMOVE_RECURSE
  "CMakeFiles/webdex_common.dir/rng.cc.o"
  "CMakeFiles/webdex_common.dir/rng.cc.o.d"
  "CMakeFiles/webdex_common.dir/status.cc.o"
  "CMakeFiles/webdex_common.dir/status.cc.o.d"
  "CMakeFiles/webdex_common.dir/strings.cc.o"
  "CMakeFiles/webdex_common.dir/strings.cc.o.d"
  "CMakeFiles/webdex_common.dir/varint.cc.o"
  "CMakeFiles/webdex_common.dir/varint.cc.o.d"
  "libwebdex_common.a"
  "libwebdex_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdex_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
