file(REMOVE_RECURSE
  "libwebdex_common.a"
)
