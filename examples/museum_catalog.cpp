// Museum catalog: the paper's running example (Figures 2-3) end to end.
//
// Loads a painting + museum corpus and evaluates the paper's queries
// q1-q5 under every indexing strategy and under the no-index baseline,
// printing documents fetched, virtual response time and metered dollars
// for each — a miniature of the paper's Section 8 study.
//
//   $ ./museum_catalog [num_paintings]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "cloud/cloud_env.h"
#include "engine/warehouse.h"
#include "xmark/paintings.h"

namespace {

// The five queries of the paper's Figure 2, in this library's syntax.
const char* kQueries[] = {
    // q1: (painting name, painter name) pairs.
    "//painting[/name:val, //painter/name:val]",
    // q2: descriptions of paintings from 1854.
    "//painting[//description:cont, /year='1854']",
    // q3: last names of painters of paintings named *Lion*.
    "//painting[/name~'Lion', //painter/name/last:val]",
    // q4: names of Manet paintings created in (1854, 1865].
    "//painting[/name:val, /painter/name[/last='Manet'], "
    "/year in(1854,1865]]",
    // q5: museums exposing paintings by Delacroix (a value join).
    "//museum[/name:val, /painting/@id#x]; "
    "//painting[/@id#y, /painter/name[/last='Delacroix']] where #x=#y",
};

struct Run {
  const char* label;
  bool use_index;
  webdex::index::StrategyKind strategy;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace webdex;

  xmark::PaintingsConfig corpus;
  if (argc > 1) corpus.num_paintings = std::atoi(argv[1]);
  const auto documents = xmark::GeneratePaintings(corpus);
  std::printf("corpus: %d paintings + %d museums\n\n", corpus.num_paintings,
              corpus.num_museums);

  const Run runs[] = {
      {"no-index", false, index::StrategyKind::kLU},
      {"LU", true, index::StrategyKind::kLU},
      {"LUP", true, index::StrategyKind::kLUP},
      {"LUI", true, index::StrategyKind::kLUI},
      {"2LUPI", true, index::StrategyKind::k2LUPI},
  };

  std::printf("%-10s %-5s %10s %10s %12s %8s\n", "strategy", "query",
              "fetched", "rows", "time (s)", "$");
  for (const Run& run : runs) {
    cloud::CloudEnv env;
    engine::WarehouseConfig config;
    config.use_index = run.use_index;
    config.strategy = run.strategy;
    engine::Warehouse warehouse(&env, config);
    if (!warehouse.Setup().ok()) return 1;
    for (const auto& doc : documents) {
      (void)warehouse.SubmitDocument(doc.uri, doc.text);
    }
    if (run.use_index && !warehouse.RunIndexers().ok()) return 1;

    for (size_t q = 0; q < std::size(kQueries); ++q) {
      const cloud::Usage before = env.meter().Snapshot();
      auto outcome = warehouse.ExecuteQuery(kQueries[q]);
      if (!outcome.ok()) {
        std::fprintf(stderr, "q%zu: %s\n", q + 1,
                     outcome.status().ToString().c_str());
        return 1;
      }
      const double dollars =
          env.meter().ComputeBill(env.meter().Snapshot() - before).total();
      std::printf("%-10s q%-4zu %10llu %10zu %12.3f %8.6f\n", run.label,
                  q + 1,
                  (unsigned long long)outcome.value().docs_fetched,
                  outcome.value().result.rows.size(),
                  static_cast<double>(outcome.value().timings.total) / 1e6,
                  dollars);
    }
    std::printf("\n");
  }

  std::printf(
      "Things to notice (the paper's Section 8 story in miniature):\n"
      "  * q1/q3/q4 fetch far fewer documents with any index than "
      "without;\n"
      "  * LUI/2LUPI are exact on the tree-pattern queries;\n"
      "  * the value join q5 fetches documents for both patterns.\n");
  return 0;
}
