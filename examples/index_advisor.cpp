// Index advisor: the tool the paper names as future work (Section 9) —
// "based on the expected dataset and workload, estimates an
// application's performance and cost and picks the best indexing
// strategy to use."
//
// Feeds a representative document sample and an expected workload to
// cost::AdviseStrategy, which dry-runs every strategy (and the no-index
// baseline) in a private simulated cloud and scales the metered costs to
// the expected production size.
//
//   $ ./index_advisor [expected_documents] [runs_per_month]

#include <cstdio>
#include <cstdlib>

#include "cost/advisor.h"
#include "xmark/xmark_generator.h"

int main(int argc, char** argv) {
  using namespace webdex;

  cost::AdvisorInput input;
  input.expected_documents =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  input.workload_runs_per_month = argc > 2 ? std::atof(argv[2]) : 100;

  // A 24-document sample standing in for the production corpus.
  xmark::GeneratorConfig sample;
  sample.split_sections = true;
  sample.num_documents = 24;
  sample.entities_per_document = 40;
  xmark::XmarkGenerator generator(sample);
  for (const auto& doc : generator.GenerateAll()) {
    input.sample_documents.emplace_back(doc.uri, doc.text);
  }

  input.workload = {
      "//item[/name:val, /mailbox/mail/from:val]",
      "//person[/name:val, /address[/city='Paris']]",
      "//closed_auction[/price:val, /annotation[/happiness]]",
      "//open_auction[/seller/@person#s, /initial:val]; "
      "//people/person[/@id#p, /name:val] where #s=#p",
  };

  std::printf(
      "advising for %llu expected documents, %.0f workload runs/month, "
      "%zu-document sample...\n\n",
      (unsigned long long)input.expected_documents,
      input.workload_runs_per_month, input.sample_documents.size());

  auto report = cost::AdviseStrategy(input);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", report.value().ToString().c_str());
  std::printf(
      "\n(model: every strategy dry-run on the sample in a private "
      "simulated cloud;\n metered $ scaled linearly to the expected "
      "corpus — see cost/advisor.h)\n");
  return 0;
}
