// Quickstart: stand up a simulated cloud, load the paper's two example
// documents (Figure 3), index them with the LUP strategy, and run the
// paper's query q3 — "the last name of painters having authored a
// painting whose name includes the word Lion".
//
//   $ ./quickstart

#include <cstdio>

#include "cloud/cloud_env.h"
#include "engine/warehouse.h"
#include "xmark/paintings.h"

int main() {
  using namespace webdex;

  // 1. A simulated AWS region: S3, DynamoDB, SQS, usage metering.
  cloud::CloudEnv env;

  // 2. A warehouse (paper Figure 1) using the LUP indexing strategy and
  //    one large EC2 instance.
  engine::WarehouseConfig config;
  config.strategy = index::StrategyKind::kLUP;
  engine::Warehouse warehouse(&env, config);
  if (auto status = warehouse.Setup(); !status.ok()) {
    std::fprintf(stderr, "setup: %s\n", status.ToString().c_str());
    return 1;
  }

  // 3. Load the documents of the paper's Figure 3 ("delacroix.xml" and
  //    "manet.xml") plus a small generated painting corpus.
  for (const auto& doc : xmark::Figure3Documents()) {
    (void)warehouse.SubmitDocument(doc.uri, doc.text);
  }
  xmark::PaintingsConfig corpus_config;
  corpus_config.num_paintings = 20;
  for (const auto& doc : xmark::GeneratePaintings(corpus_config)) {
    (void)warehouse.SubmitDocument("corpus/" + doc.uri, doc.text);
  }

  // 4. Drain the loader queue: virtual machines parse documents, extract
  //    (key, URI, path) entries and upload them to the key-value store.
  auto indexing = warehouse.RunIndexers();
  if (!indexing.ok()) {
    std::fprintf(stderr, "indexing: %s\n",
                 indexing.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed %llu documents in %.2f virtual seconds\n",
              (unsigned long long)indexing.value().documents,
              static_cast<double>(indexing.value().makespan) / 1e6);

  // 5. Ask the paper's q3.  Look-up hits the index, only the documents
  //    that can match are fetched from the file store and evaluated.
  auto outcome = warehouse.ExecuteQuery(
      "//painting[/name~'Lion', //painter/name/last:val]");
  if (!outcome.ok()) {
    std::fprintf(stderr, "query: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("q3 fetched %llu of %zu documents and answered in %.3f "
              "virtual seconds:\n",
              (unsigned long long)outcome.value().docs_fetched,
              warehouse.document_uris().size(),
              static_cast<double>(outcome.value().timings.total) / 1e6);
  for (const auto& row : outcome.value().result.rows) {
    std::printf("  painter: %s\n", row[0].c_str());
  }

  // 6. What did all of this cost?
  std::printf("\nAWS bill so far:\n%s",
              env.meter().ComputeBill().ToString().c_str());
  return 0;
}
