// XMark warehouse: the paper's full pipeline at benchmark scale.
//
// Generates an XMark-style fragment corpus (the paper's split corpus),
// indexes it with a fleet of simulated large EC2 instances under a
// chosen strategy, answers an auction workload with a parallel query
// fleet, and prints the complete metered AWS bill.
//
//   $ ./xmark_warehouse [LU|LUP|LUI|2LUPI] [num_documents] [instances]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cloud/cloud_env.h"
#include "engine/warehouse.h"
#include "xmark/xmark_generator.h"

namespace {

const char* kWorkload[] = {
    "//regions//item[/@id='item42', //name:val]",
    "//closed_auction[/annotation:cont, /annotation/description~'amber']",
    "//item[/name:val, /mailbox/mail/from:val]",
    "//person[/name:val, /address[/city='Paris'], /creditcard]",
    "//open_auction[/seller/@person#s, /initial:val]; "
    "//people/person[/@id#p, /name:val] where #s=#p",
};

webdex::index::StrategyKind ParseStrategy(const char* name) {
  using webdex::index::StrategyKind;
  if (std::strcmp(name, "LU") == 0) return StrategyKind::kLU;
  if (std::strcmp(name, "LUI") == 0) return StrategyKind::kLUI;
  if (std::strcmp(name, "2LUPI") == 0) return StrategyKind::k2LUPI;
  return StrategyKind::kLUP;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace webdex;

  const index::StrategyKind strategy =
      ParseStrategy(argc > 1 ? argv[1] : "LUP");
  xmark::GeneratorConfig corpus;
  corpus.split_sections = true;
  corpus.num_documents = argc > 2 ? std::atoi(argv[2]) : 240;
  corpus.entities_per_document = 40;
  const int instances = argc > 3 ? std::atoi(argv[3]) : 4;

  cloud::CloudEnv env;
  engine::WarehouseConfig config;
  config.strategy = strategy;
  config.num_instances = instances;
  engine::Warehouse warehouse(&env, config);
  if (!warehouse.Setup().ok()) return 1;

  std::printf("loading %d XMark fragment documents...\n",
              corpus.num_documents);
  xmark::XmarkGenerator generator(corpus);
  for (int i = 0; i < corpus.num_documents; ++i) {
    auto doc = generator.Generate(i);
    if (auto s = warehouse.SubmitDocument(doc.uri, std::move(doc.text));
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("corpus: %.1f MB in the file store\n",
              static_cast<double>(warehouse.data_bytes()) / (1 << 20));

  auto indexing = warehouse.RunIndexers();
  if (!indexing.ok()) {
    std::fprintf(stderr, "%s\n", indexing.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "built the %s index on %d L instances in %.1f virtual seconds "
      "(index: %.1f MB + %.1f MB store overhead)\n\n",
      index::StrategyKindName(strategy), instances,
      static_cast<double>(indexing.value().makespan) / 1e6,
      static_cast<double>(warehouse.IndexRawBytes()) / (1 << 20),
      static_cast<double>(warehouse.IndexOverheadBytes()) / (1 << 20));

  std::vector<std::string> workload(std::begin(kWorkload),
                                    std::end(kWorkload));
  auto report = warehouse.ExecuteQueries(workload);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%-5s %9s %9s %9s %8s  query\n", "q#", "from-idx", "fetched",
              "rows", "time(s)");
  for (size_t i = 0; i < report.value().outcomes.size(); ++i) {
    const auto& outcome = report.value().outcomes[i];
    std::printf("q%-4zu %9llu %9llu %9zu %8.3f  %.60s\n", i + 1,
                (unsigned long long)outcome.docs_from_index,
                (unsigned long long)outcome.docs_fetched,
                outcome.result.rows.size(),
                static_cast<double>(outcome.timings.total) / 1e6,
                outcome.query_text.c_str());
  }
  std::printf("\nworkload makespan on %d instance(s): %.2f virtual s\n",
              instances,
              static_cast<double>(report.value().makespan) / 1e6);
  std::printf("\ntotal metered AWS bill:\n%s",
              env.meter().ComputeBill().ToString().c_str());
  return 0;
}
