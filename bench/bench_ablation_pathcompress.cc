// Ablation: front-coded LUP paths (the paper's Section 8.5 suggestion:
// "Further compression of the paths in the LUP index could probably make
// it even more competitive").
//
// Builds the LUP index twice — plain path values vs front-coded blobs —
// and compares index size, build time/cost, and query behaviour.
//
// Expected shape: compression shrinks the stored path payload severalfold
// (label paths share long prefixes), cutting upload time and DynamoDB
// cost; query results are identical, with a small CPU cost to decode.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"

namespace webdex::bench {
namespace {

struct Run {
  uint64_t index_bytes = 0;
  cloud::Micros build_makespan = 0;
  double build_cost = 0;
  cloud::Micros workload_micros = 0;
  uint64_t rows = 0;
};

std::map<bool, Run>& Results() {
  static auto* results = new std::map<bool, Run>();
  return *results;
}

void BM_PathCompression(benchmark::State& state) {
  const bool compressed = state.range(0) != 0;
  for (auto _ : state) {
    Deployment d;
    d.env = std::make_unique<cloud::CloudEnv>();
    engine::WarehouseConfig config;
    config.strategy = index::StrategyKind::kLUP;
    config.num_instances = 8;
    config.extract.compress_paths = compressed;
    d.warehouse = std::make_unique<engine::Warehouse>(d.env.get(), config);
    if (!d.warehouse->Setup().ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    const auto corpus = IndexingCorpusConfig();
    xmark::XmarkGenerator generator(corpus);
    for (int i = 0; i < corpus.num_documents; ++i) {
      auto doc = generator.Generate(i);
      (void)d.warehouse->SubmitDocument(doc.uri, std::move(doc.text));
    }
    const cloud::Usage before = d.env->meter().Snapshot();
    auto indexing = d.warehouse->RunIndexers();
    if (!indexing.ok()) {
      state.SkipWithError("indexing failed");
      return;
    }
    Run run;
    run.build_makespan = indexing.value().makespan;
    run.build_cost =
        d.env->meter().ComputeBill(d.env->meter().Snapshot() - before)
            .total();
    run.index_bytes =
        d.warehouse->IndexRawBytes() + d.warehouse->IndexOverheadBytes();
    // Rebuild the facade for single-instance queries.
    engine::WarehouseConfig query_config = config;
    query_config.num_instances = 1;
    auto fresh =
        std::make_unique<engine::Warehouse>(d.env.get(), query_config);
    fresh->AdoptExistingData(*d.warehouse);
    d.warehouse = std::move(fresh);
    for (const auto& query : Workload()) {
      auto outcome = d.warehouse->ExecuteQuery(query);
      if (!outcome.ok()) {
        state.SkipWithError(outcome.status().ToString().c_str());
        return;
      }
      run.workload_micros += outcome.value().timings.total;
      run.rows += outcome.value().result.rows.size();
    }
    state.counters["index_MB"] =
        static_cast<double>(run.index_bytes) / (1024.0 * 1024.0);
    state.counters["build_s"] =
        static_cast<double>(run.build_makespan) / 1e6;
    Results()[compressed] = run;
  }
  state.SetLabel(compressed ? "front-coded" : "plain");
}

BENCHMARK(BM_PathCompression)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintTable() {
  PrintHeader(
      "Ablation: LUP path compression (Section 8.5 'future work', "
      "implemented)");
  const Run& plain = Results()[false];
  const Run& coded = Results()[true];
  std::printf("%-14s %14s %12s %12s %14s %8s\n", "Mode", "Index (MB)",
              "Build (s)", "Build $", "Workload (s)", "Rows");
  std::printf("%-14s %14.2f %12s %12.6f %14s %8llu\n", "plain",
              static_cast<double>(plain.index_bytes) / (1024.0 * 1024.0),
              Secs(plain.build_makespan).c_str(), plain.build_cost,
              Secs(plain.workload_micros).c_str(),
              (unsigned long long)plain.rows);
  std::printf("%-14s %14.2f %12s %12.6f %14s %8llu\n", "front-coded",
              static_cast<double>(coded.index_bytes) / (1024.0 * 1024.0),
              Secs(coded.build_makespan).c_str(), coded.build_cost,
              Secs(coded.workload_micros).c_str(),
              (unsigned long long)coded.rows);
  if (coded.index_bytes > 0) {
    std::printf("compression ratio (raw+overhead): %.2fx; identical "
                "result rows: %s\n",
                static_cast<double>(plain.index_bytes) /
                    static_cast<double>(coded.index_bytes),
                plain.rows == coded.rows ? "yes" : "NO (bug!)");
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintTable();
  return 0;
}
