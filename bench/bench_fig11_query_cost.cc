// Reproduces paper Figure 11: per-query monetary cost for no-index and
// the four strategies, on large and extra-large instances.
//
// Expected shape (paper): indexing cuts query cost by ~92-97% versus the
// no-index scan; with an index the cost is nearly independent of the
// instance type (XL costs twice as much per hour but finishes in about
// half the time).

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"

namespace webdex::bench {
namespace {

std::map<std::string, std::vector<double>>& Results() {
  static auto* results = new std::map<std::string, std::vector<double>>();
  return *results;
}

const char* kConfigs[] = {"NoIndex", "LU", "LUP", "LUI", "2LUPI"};

void BM_QueryCost(benchmark::State& state) {
  const int config_index = static_cast<int>(state.range(0));
  const cloud::InstanceType type = state.range(1) == 0
                                       ? cloud::InstanceType::kLarge
                                       : cloud::InstanceType::kExtraLarge;
  const bool use_index = config_index > 0;
  const index::StrategyKind kind =
      use_index ? index::AllStrategyKinds()[config_index - 1]
                : index::StrategyKind::kLU;
  for (auto _ : state) {
    Deployment d = Deploy(kind, use_index, 1, type, CorpusConfig());
    std::vector<double> costs;
    double total = 0;
    for (const auto& query : Workload()) {
      const cloud::Usage before = d.env->meter().Snapshot();
      auto outcome = d.warehouse->ExecuteQuery(query);
      if (!outcome.ok()) {
        state.SkipWithError(outcome.status().ToString().c_str());
        return;
      }
      const double cost =
          d.env->meter()
              .ComputeBill(d.env->meter().Snapshot() - before)
              .total();
      costs.push_back(cost);
      total += cost;
    }
    state.counters["workload_usd"] = total;
    Results()[StrFormat("%s/%s", kConfigs[config_index],
                        cloud::InstanceTypeName(type))] = std::move(costs);
  }
  state.SetLabel(StrFormat("%s on %s", kConfigs[config_index],
                           cloud::InstanceTypeName(type)));
}

BENCHMARK(BM_QueryCost)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintFigure() {
  PrintHeader("Figure 11: query processing cost ($, metered) per query");
  std::printf("%-12s", "Config");
  for (size_t q = 1; q <= Workload().size(); ++q) {
    std::printf(" %10s", StrFormat("q%zu", q).c_str());
  }
  std::printf("\n");
  for (const char* config : kConfigs) {
    for (const char* type : {"L", "XL"}) {
      const auto it = Results().find(StrFormat("%s/%s", config, type));
      if (it == Results().end()) continue;
      std::printf("%-12s", StrFormat("%s/%s", config, type).c_str());
      for (double cost : it->second) std::printf(" %10.6f", cost);
      std::printf("\n");
    }
  }
  // Savings summary (the paper quotes 92-97%).
  const auto& no_index = Results()["NoIndex/L"];
  if (!no_index.empty()) {
    PrintHeader("Savings vs no-index (L)");
    for (const char* config : {"LU", "LUP", "LUI", "2LUPI"}) {
      const auto it = Results().find(StrFormat("%s/L", config));
      if (it == Results().end()) continue;
      double base = 0, indexed = 0;
      for (size_t q = 0; q < no_index.size(); ++q) {
        base += no_index[q];
        indexed += it->second[q];
      }
      std::printf("%-8s workload $%.6f vs $%.6f -> %.1f%% saved\n", config,
                  indexed, base, 100.0 * (1.0 - indexed / base));
    }
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintFigure();
  return 0;
}
