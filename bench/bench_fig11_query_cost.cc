// Reproduces paper Figure 11: per-query monetary cost for no-index and
// the four strategies, on large and extra-large instances.
//
// Expected shape (paper): indexing cuts query cost by ~92-97% versus the
// no-index scan; with an index the cost is nearly independent of the
// instance type (XL costs twice as much per hour but finishes in about
// half the time).

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"

namespace webdex::bench {
namespace {

std::map<std::string, std::vector<double>>& Results() {
  static auto* results = new std::map<std::string, std::vector<double>>();
  return *results;
}

const char* kConfigs[] = {"NoIndex", "LU", "LUP", "LUI", "2LUPI"};

void BM_QueryCost(benchmark::State& state) {
  const int config_index = static_cast<int>(state.range(0));
  const cloud::InstanceType type = state.range(1) == 0
                                       ? cloud::InstanceType::kLarge
                                       : cloud::InstanceType::kExtraLarge;
  const bool use_index = config_index > 0;
  const index::StrategyKind kind =
      use_index ? index::AllStrategyKinds()[config_index - 1]
                : index::StrategyKind::kLU;
  for (auto _ : state) {
    Deployment d = Deploy(kind, use_index, 1, type, CorpusConfig());
    std::vector<double> costs;
    double total = 0;
    for (size_t q = 0; q < Workload().size(); ++q) {
      const cloud::Usage before = d.env->meter().Snapshot();
      auto outcome = d.warehouse->ExecuteQuery(Workload()[q]);
      if (!outcome.ok()) {
        state.SkipWithError(outcome.status().ToString().c_str());
        return;
      }
      const double cost =
          d.env->meter()
              .ComputeBill(d.env->meter().Snapshot() - before)
              .total();
      costs.push_back(cost);
      total += cost;
      RecordJson(
          StrFormat("fig11/%s/%s/q%zu", kConfigs[config_index],
                    cloud::InstanceTypeName(type), q + 1),
          {{"usd", cost},
           {"estimated_cost_usd", outcome.value().estimated_cost_usd},
           {"actual_cost_usd", outcome.value().actual_cost_usd},
           {"planner_fallbacks",
            static_cast<double>(outcome.value().planner_fallbacks)}},
          {{"chosen_path", outcome.value().chosen_path}});
    }
    state.counters["workload_usd"] = total;
    Results()[StrFormat("%s/%s", kConfigs[config_index],
                        cloud::InstanceTypeName(type))] = std::move(costs);
  }
  state.SetLabel(StrFormat("%s on %s", kConfigs[config_index],
                           cloud::InstanceTypeName(type)));
}

BENCHMARK(BM_QueryCost)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Brownout sweep (docs/FAULTS.md): the same LUP workload with a
// sustained DynamoDB outage of growing length placed over the query
// phase.  A brief outage is absorbed by retries (cost creeps up with
// the rented backoff time); a sustained one trips the circuit breaker
// and every query falls back to a full scan, so the workload cost jumps
// toward the no-index row above — the retry-vs-scan crossover.
void BM_QueryCostOutage(benchmark::State& state) {
  const double outage_seconds = static_cast<double>(state.range(0));
  for (auto _ : state) {
    // Pass 1 (healthy) pins down when the query phase starts; indexing
    // is deterministic, so pass 2's build finishes at the same instant
    // and the outage window hits only the queries.
    const cloud::Micros query_start =
        Deploy(index::StrategyKind::kLUP, true, 1,
               cloud::InstanceType::kLarge, CorpusConfig())
            .warehouse->front_end()
            .now();
    cloud::CloudConfig cloud_config;
    if (outage_seconds > 0) {
      cloud::OutageWindow window;
      window.service = cloud::ServiceId::kDynamoDb;
      window.start = query_start;
      window.end = query_start + static_cast<cloud::Micros>(
                                     outage_seconds * cloud::kMicrosPerSecond);
      cloud_config.faults.outages.push_back(window);
    }
    Deployment d = Deploy(index::StrategyKind::kLUP, true, 1,
                          cloud::InstanceType::kLarge, CorpusConfig(),
                          engine::IndexBackend::kDynamoDb, true, 8,
                          cloud_config);
    const cloud::Usage before = d.env->meter().Snapshot();
    auto run = d.warehouse->ExecuteQueries(Workload());
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    const cloud::Usage delta = d.env->meter().Snapshot() - before;
    const double cost = d.env->meter().ComputeBill(delta).total();
    state.counters["workload_usd"] = cost;
    state.counters["degraded"] =
        static_cast<double>(run.value().degraded_queries);
    state.counters["breaker_opens"] =
        static_cast<double>(run.value().breaker_opens);
    std::vector<std::pair<std::string, double>> metrics;
    metrics.emplace_back("outage_s", outage_seconds);
    metrics.emplace_back("workload_usd", cost);
    metrics.emplace_back(
        "makespan_s",
        static_cast<double>(run.value().makespan) / cloud::kMicrosPerSecond);
    metrics.emplace_back("planner_fallbacks",
                         static_cast<double>(run.value().planner_fallbacks));
    AppendFaultColumns(delta, &metrics);
    AppendMetricColumns(d.env->metrics(), &metrics);
    RecordJson(StrFormat("fig11/outage/%.0fs", outage_seconds),
               std::move(metrics));
  }
  state.SetLabel(StrFormat("LUP/L with %.0f s DynamoDB outage",
                           outage_seconds));
}

BENCHMARK(BM_QueryCostOutage)
    ->Arg(0)
    ->Arg(1)
    ->Arg(300)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintFigure() {
  PrintHeader("Figure 11: query processing cost ($, metered) per query");
  std::printf("%-12s", "Config");
  for (size_t q = 1; q <= Workload().size(); ++q) {
    std::printf(" %10s", StrFormat("q%zu", q).c_str());
  }
  std::printf("\n");
  for (const char* config : kConfigs) {
    for (const char* type : {"L", "XL"}) {
      const auto it = Results().find(StrFormat("%s/%s", config, type));
      if (it == Results().end()) continue;
      std::printf("%-12s", StrFormat("%s/%s", config, type).c_str());
      for (double cost : it->second) std::printf(" %10.6f", cost);
      std::printf("\n");
    }
  }
  // Savings summary (the paper quotes 92-97%).
  const auto& no_index = Results()["NoIndex/L"];
  if (!no_index.empty()) {
    PrintHeader("Savings vs no-index (L)");
    for (const char* config : {"LU", "LUP", "LUI", "2LUPI"}) {
      const auto it = Results().find(StrFormat("%s/L", config));
      if (it == Results().end()) continue;
      double base = 0, indexed = 0;
      for (size_t q = 0; q < no_index.size(); ++q) {
        base += no_index[q];
        indexed += it->second[q];
      }
      std::printf("%-8s workload $%.6f vs $%.6f -> %.1f%% saved\n", config,
                  indexed, base, 100.0 * (1.0 - indexed / base));
    }
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  webdex::bench::ParseJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintFigure();
  webdex::bench::FlushJson();
  return 0;
}
