// Overload frontier (docs/OVERLOAD.md): the same rising offered load
// driven at three provisioning postures of the index store —
//
//   static-low   base read capacity; organic throttles + paced retries
//                absorb the overload, p99 climbs past the knee
//   static-peak  read capacity provisioned for the peak at all times;
//                p99 stays flat but every capacity-hour is billed
//                (metered honestly via the autoscaler's bill-only mode)
//   autoscale    starts at base, the reactive autoscaler follows the
//                load between the same base and peak bounds
//
// The p50/p99-latency-vs-dollars rows trace the frontier the tentpole
// claims: the autoscaler keeps p99 bounded at strictly lower billed $
// than static peak over-provisioning.  No FaultPlan anywhere — every
// retry here is a reaction to an organic throttle.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <vector>

#include "bench/harness.h"

namespace webdex::bench {
namespace {

// Base / peak read capacity (4 KB units / second).  The workload's burst
// comfortably exceeds base, so static-low hits the knee; peak absorbs
// the heaviest level.  Writes keep the default provision — the overload
// under test is the query-side read path.
constexpr double kBaseReadUnits = 10;
constexpr double kPeakReadUnits = 250;
constexpr cloud::Micros kBacklogBound = 100'000;  // 0.1 s organic knee

// Virtual idle tail billed after the burst: provisioned capacity costs
// by the hour whether a burst is in flight or not, which is exactly how
// static peak over-provisioning bleeds money.  The autoscaler scales
// back down during the tail; static-peak keeps paying for the peak.
constexpr cloud::Micros kIdleTail = 1'800 * cloud::kMicrosPerSecond;

int Repeats() {
  if (const char* r = std::getenv("WEBDEX_BENCH_REPEAT")) {
    return std::atoi(r);
  }
  return 4;
}

enum class Mode { kStaticLow, kStaticPeak, kAutoscale };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kStaticLow:
      return "static-low";
    case Mode::kStaticPeak:
      return "static-peak";
    case Mode::kAutoscale:
      return "autoscale";
  }
  return "?";
}

cloud::CloudConfig ModeConfig(Mode mode) {
  cloud::CloudConfig config;
  config.dynamodb.max_backlog_micros = kBacklogBound;
  config.dynamodb.read_units_per_second =
      mode == Mode::kStaticPeak ? kPeakReadUnits : kBaseReadUnits;
  if (mode == Mode::kAutoscale) {
    config.autoscale.enabled = true;
    config.autoscale.min_read_units = kBaseReadUnits;
    config.autoscale.max_read_units = kPeakReadUnits;
    // Writes may decay to a floor once the build-phase burst is over —
    // idle write capacity is the biggest line item a static provision
    // keeps paying for.
    config.autoscale.min_write_units = 100;
    config.autoscale.max_write_units = config.dynamodb.write_units_per_second;
    // The bench's bursts live at seconds scale, so the control loop
    // runs at seconds scale too (production defaults are 10s/120s).
    config.autoscale.evaluation_interval = 1 * cloud::kMicrosPerSecond;
    config.autoscale.scale_up_cooldown = 1 * cloud::kMicrosPerSecond;
    config.autoscale.scale_down_cooldown = 20 * cloud::kMicrosPerSecond;
  } else {
    // Meter capacity-hours without moving capacity: the static modes
    // pay honestly for what they provision.
    config.autoscale.bill_capacity = true;
  }
  return config;
}

struct Row {
  double p50_ms = 0;
  double p99_ms = 0;
  double dollars = 0;
};

std::map<std::string, Row>& Results() {
  static auto* results = new std::map<std::string, Row>();
  return *results;
}

// Nearest-rank percentile over the admitted queries' virtual latencies.
double PercentileMs(std::vector<cloud::Micros> latencies, double p) {
  if (latencies.empty()) return 0;
  std::sort(latencies.begin(), latencies.end());
  const size_t rank = static_cast<size_t>(
      p * static_cast<double>(latencies.size() - 1) + 0.5);
  return static_cast<double>(latencies[rank]) / 1e3;
}

void BM_Overload(benchmark::State& state) {
  const Mode mode = static_cast<Mode>(state.range(0));
  const int load = static_cast<int>(state.range(1));  // workload repeats
  for (auto _ : state) {
    Deployment d = Deploy(index::StrategyKind::kLUP, /*use_index=*/true,
                          /*query_instances=*/8, cloud::InstanceType::kLarge,
                          CorpusConfig(), engine::IndexBackend::kDynamoDb,
                          /*full_text=*/true, /*index_instances=*/8,
                          ModeConfig(mode));
    std::vector<std::string> workload;
    for (int r = 0; r < load * Repeats(); ++r) {
      for (const auto& query : Workload()) workload.push_back(query);
    }
    const cloud::Usage before = d.env->meter().Snapshot();
    // Rising offered load: a half-size ramp wave first, then the peak
    // wave.  A reactive controller can only ever react — the ramp is
    // where it does, and the frontier is read at the peak wave.  Both
    // waves are billed.
    std::vector<std::string> ramp(
        workload.begin(),
        workload.begin() +
            static_cast<std::ptrdiff_t>(workload.size() / 2));
    if (ramp.empty()) ramp = workload;
    auto ramp_report = d.warehouse->ExecuteQueries(ramp);
    if (!ramp_report.ok()) {
      state.SkipWithError(ramp_report.status().ToString().c_str());
      return;
    }
    auto report = d.warehouse->ExecuteQueries(workload);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    // Settle the capacity-hour meter through the idle tail so every
    // mode's bill covers the same virtual span: the autoscaler decays
    // back toward base during the tail, static peak keeps paying.
    d.env->autoscaler().FinishBilling(d.warehouse->front_end().now() +
                                      kIdleTail);
    const cloud::Usage delta = d.env->meter().Snapshot() - before;
    const cloud::Bill bill = d.env->meter().ComputeBill(delta);

    std::vector<cloud::Micros> latencies;
    for (const auto& outcome : report.value().outcomes) {
      if (!outcome.shed) latencies.push_back(outcome.timings.total);
    }
    Row row;
    row.p50_ms = PercentileMs(latencies, 0.50);
    row.p99_ms = PercentileMs(latencies, 0.99);
    row.dollars = bill.total();
    const std::string key = StrFormat("%s/x%d", ModeName(mode), load);
    Results()[key] = row;

    state.counters["p50_ms"] = row.p50_ms;
    state.counters["p99_ms"] = row.p99_ms;
    state.counters["cost_dollars"] = row.dollars;
    state.counters["throttled"] =
        static_cast<double>(delta.throttled_requests);
    state.counters["shed"] = static_cast<double>(delta.shed_queries);
    state.counters["scale_events"] =
        static_cast<double>(delta.scale_events);

    std::vector<std::pair<std::string, double>> metrics = {
        {"queries", static_cast<double>(workload.size())},
        {"p50_ms", row.p50_ms},
        {"p99_ms", row.p99_ms},
        {"cost_dollars", row.dollars},
        {"throttled_requests",
         static_cast<double>(delta.throttled_requests)},
        {"shed_queries", static_cast<double>(delta.shed_queries)},
        {"scale_events", static_cast<double>(delta.scale_events)},
        {"read_capacity_hours", delta.ddb_read_capacity_hours},
        {"makespan_s",
         static_cast<double>(report.value().makespan) / 1e6},
    };
    AppendFaultColumns(delta, &metrics);
    RecordJson(StrFormat("fig10_overload/%s", key.c_str()),
               std::move(metrics));
  }
  state.SetLabel(StrFormat("%s x%d", ModeName(mode), load));
}

BENCHMARK(BM_Overload)
    ->ArgsProduct({{0, 1, 2}, {1, 2, 4}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintFigure() {
  PrintHeader(
      "Figure 10-overload: p50/p99 latency vs billed $ per provisioning "
      "mode (virtual, no FaultPlan)");
  std::printf("%-12s %6s %10s %10s %10s\n", "Mode", "Load", "p50 (ms)",
              "p99 (ms)", "$");
  for (const Mode mode :
       {Mode::kStaticLow, Mode::kStaticPeak, Mode::kAutoscale}) {
    for (const int load : {1, 2, 4}) {
      const auto it =
          Results().find(StrFormat("%s/x%d", ModeName(mode), load));
      if (it == Results().end()) continue;
      std::printf("%-12s %6d %10.1f %10.1f %10.4f\n", ModeName(mode), load,
                  it->second.p50_ms, it->second.p99_ms,
                  it->second.dollars);
    }
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  webdex::bench::ParseJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintFigure();
  webdex::bench::FlushJson();
  return 0;
}
