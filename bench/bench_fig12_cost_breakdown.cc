// Reproduces paper Figure 12: "Workload evaluation cost details on an
// extra large (XL) instance" — the whole 10-query workload's metered
// bill decomposed across DynamoDB, S3, EC2, SQS and AWSDown (egress),
// for no-index and the four strategies.
//
// Expected shape (paper): EC2 dominates every configuration; AWSDown is
// identical everywhere (same results flow out); S3 tracks index
// selectivity; DynamoDB is tiny for LU/LUP and visibly larger for
// LUI/2LUPI, which pull ID lists.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"

namespace webdex::bench {
namespace {

std::map<std::string, cloud::Bill>& Results() {
  static auto* results = new std::map<std::string, cloud::Bill>();
  return *results;
}

const char* kConfigs[] = {"NoIndex", "LU", "LUP", "LUI", "2LUPI"};

void BM_CostBreakdown(benchmark::State& state) {
  const int config_index = static_cast<int>(state.range(0));
  const bool use_index = config_index > 0;
  const index::StrategyKind kind =
      use_index ? index::AllStrategyKinds()[config_index - 1]
                : index::StrategyKind::kLU;
  for (auto _ : state) {
    Deployment d = Deploy(kind, use_index, 1,
                          cloud::InstanceType::kExtraLarge, CorpusConfig());
    const cloud::Usage before = d.env->meter().Snapshot();
    auto report = d.warehouse->ExecuteQueries(Workload());
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    const cloud::Bill bill =
        d.env->meter().ComputeBill(d.env->meter().Snapshot() - before);
    state.counters["total_usd"] = bill.total();
    state.counters["ec2_usd"] = bill.ec2;
    Results()[kConfigs[config_index]] = bill;
  }
  state.SetLabel(kConfigs[config_index]);
}

BENCHMARK(BM_CostBreakdown)
    ->DenseRange(0, 4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintFigure() {
  PrintHeader(
      "Figure 12: workload cost decomposition on one XL instance "
      "($, metered)");
  std::printf("%-10s %12s %12s %12s %12s %12s %12s\n", "Config",
              "DynamoDB", "S3", "EC2", "SQS", "AWSDown", "Total");
  for (const char* config : kConfigs) {
    auto it = Results().find(config);
    if (it == Results().end()) continue;
    const cloud::Bill& bill = it->second;
    std::printf("%-10s %12.6f %12.6f %12.6f %12.6f %12.6f %12.6f\n",
                config, bill.dynamodb, bill.s3, bill.ec2, bill.sqs,
                bill.egress, bill.total());
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintFigure();
  return 0;
}
