#ifndef WEBDEX_BENCH_HARNESS_H_
#define WEBDEX_BENCH_HARNESS_H_

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include <algorithm>

#include <sys/resource.h>

#include "cloud/cloud_env.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "engine/warehouse.h"
#include "index/intern.h"
#include "index/strategy.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "xmark/xmark_generator.h"
#include "xml/parser.h"

// --- Allocation counting -------------------------------------------------
//
// Each bench binary is a single translation unit including this header,
// so defining the replacement global operator new/delete here gives every
// bench an `allocs` column for free: heap allocations are the cost the
// arena-interned index core removes, and the counter makes regressions
// (a reintroduced per-key std::string, say) show up in BENCH_*.json
// trajectories.  Sanitizer builds intercept operator new themselves, so
// the counter is compiled out there and AllocCount() reports 0.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define WEBDEX_BENCH_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define WEBDEX_BENCH_COUNT_ALLOCS 0
#else
#define WEBDEX_BENCH_COUNT_ALLOCS 1
#endif
#else
#define WEBDEX_BENCH_COUNT_ALLOCS 1
#endif

namespace webdex::bench {

inline std::atomic<uint64_t>& AllocCounter() {
  static std::atomic<uint64_t> count{0};
  return count;
}

/// Heap allocations since process start (0 under ASan/TSan, where the
/// replacement operators are compiled out).
inline uint64_t AllocCount() {
  return AllocCounter().load(std::memory_order_relaxed);
}

}  // namespace webdex::bench

#if WEBDEX_BENCH_COUNT_ALLOCS
void* operator new(std::size_t size) {
  webdex::bench::AllocCounter().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  webdex::bench::AllocCounter().fetch_add(1, std::memory_order_relaxed);
  // posix_memalign, not aligned_alloc: the latter demands size be a
  // multiple of the alignment, which operator new does not guarantee.
  void* p = nullptr;
  if (posix_memalign(&p, std::max(static_cast<std::size_t>(align),
                                  sizeof(void*)),
                     size ? size : 1) == 0) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // WEBDEX_BENCH_COUNT_ALLOCS

namespace webdex::bench {

/// Scale of the benchmark corpus.  The paper used 20,000 documents / 40 GB
/// on AWS; the simulated reproduction defaults to a laptop-scale corpus
/// with the same document shape and heterogeneity.  Override with
/// WEBDEX_BENCH_DOCS / WEBDEX_BENCH_ENTITIES / WEBDEX_BENCH_SEED.
inline xmark::GeneratorConfig CorpusConfig() {
  xmark::GeneratorConfig config;
  // Fragment documents (XMark split mode), like the paper's corpus: each
  // document carries one section of the auction site, which is what gives
  // queries document-level selectivity.
  config.split_sections = true;
  config.num_documents = 240;
  config.entities_per_document = 40;
  if (const char* docs = std::getenv("WEBDEX_BENCH_DOCS")) {
    config.num_documents = std::atoi(docs);
  }
  if (const char* entities = std::getenv("WEBDEX_BENCH_ENTITIES")) {
    config.entities_per_document = std::atoi(entities);
  }
  if (const char* seed = std::getenv("WEBDEX_BENCH_SEED")) {
    config.seed = std::strtoull(seed, nullptr, 10);
  }
  return config;
}

/// Corpus used by the *indexing* experiments (Table 4, Figures 7-8,
/// Table 6): fewer but much larger documents (~330 KB), so per-key index
/// payloads differentiate by strategy the way the paper's 2 MB documents
/// did.  The paper's single corpus had both properties at once (2 MB
/// documents *and* 20,000 of them); at laptop scale each experiment
/// keeps the dimension it depends on.  Override with
/// WEBDEX_BENCH_IDX_DOCS / WEBDEX_BENCH_IDX_ENTITIES.
inline xmark::GeneratorConfig IndexingCorpusConfig() {
  xmark::GeneratorConfig config;
  config.split_sections = false;
  config.num_documents = 60;
  config.entities_per_document = 600;
  if (const char* docs = std::getenv("WEBDEX_BENCH_IDX_DOCS")) {
    config.num_documents = std::atoi(docs);
  }
  if (const char* entities = std::getenv("WEBDEX_BENCH_IDX_ENTITIES")) {
    config.entities_per_document = std::atoi(entities);
  }
  if (const char* seed = std::getenv("WEBDEX_BENCH_SEED")) {
    config.seed = std::strtoull(seed, nullptr, 10);
  }
  return config;
}

/// The 10-query workload.  The paper's exact q1-q10 live in an
/// unavailable technical report; these preserve the published profile
/// (Section 8.2): ~10 nodes per query, a selective point query (q1),
/// path-structure-sensitive queries where LUP/LUI beat LU (q3, q5, q7),
/// optional-element-sensitive queries (q4), full-text predicates (q2,
/// q6), and three value-join queries (q8-q10).
inline const std::vector<std::string>& Workload() {
  static const std::vector<std::string>* queries =
      new std::vector<std::string>{
          // q1: point query on a valued attribute key.
          "//regions//item[/@id='item42', //name:val]",
          // q2: rare full-text word, large `cont` results.
          "//closed_auction[/annotation:cont, "
          "/annotation/description~'amber']",
          // q3: path-sensitive (mutated documents drop the mailbox
          // wrapper, so /mailbox/mail prunes them) + rare word.
          "//item[/name:val, /mailbox/mail/from:val, "
          "/description~'lantern']",
          // q4: optional-element sensitive (reserve/privacy dropped in
          // heterogeneous documents) + rare word.
          "//open_auctions/open_auction[/initial:val, /reserve, /privacy, "
          "/annotation/description~'obelisk']",
          // q5: equality + structure (mutated docs move city out of
          // address).
          "//person[/name:val, /address[/city='Paris'], /creditcard]",
          // q6: rare full-text containment under a branch.
          "//open_auction[/annotation/description~'gossamer', /seller]",
          // q7: matches only path-mutated documents.
          "//item[/description/name:val]",
          // q8-q10: value joins (Section 5.5); with fragment documents
          // the joined patterns live in *different* documents.
          "//open_auction[/seller/@person#s, /initial:val, "
          "/annotation/description~'marble']; "
          "//people/person[/@id#p, /name:val] where #s=#p",
          "//closed_auction[/itemref/@item#i, /price:val, "
          "/annotation/description~'laurel']; "
          "//regions//item[/@id#j, //name:val] where #i=#j",
          "//person[/watches/watch/@open_auction#w, /name:val, "
          "/address/country='France']; "
          "//open_auction[/@id#a, /current:val] where #w=#a",
      };
  return *queries;
}

/// Host threads for the warehouse's extraction pipeline (wall-clock
/// only; virtual results are identical for every value).  Defaults to
/// auto (one per core); override with WEBDEX_HOST_THREADS, e.g.
/// WEBDEX_HOST_THREADS=1 for the legacy serial path when measuring the
/// pipeline's speedup.
inline int HostThreadsFromEnv() {
  if (const char* threads = std::getenv("WEBDEX_HOST_THREADS")) {
    return std::atoi(threads);
  }
  return 0;
}

// --- Machine-readable results (--json out.json) --------------------------
//
// Every bench main() may call ParseJsonFlag(&argc, argv) before
// benchmark::Initialize and FlushJson() before exiting.  Rows recorded
// with RecordJson land in one JSON array, ready for BENCH_*.json
// trajectory tracking:
//   [{"bench": "table4/LUP", "wall_ms": 512.3, "makespan_s": 190.1,
//     "cost_dollars": 0.84, ...}, ...]

struct JsonRow {
  std::string bench;
  std::vector<std::pair<std::string, double>> metrics;
  /// String-valued columns (e.g. the planner's chosen access path).
  std::vector<std::pair<std::string, std::string>> labels;
};

inline std::string& JsonOutputPath() {
  static auto* path = new std::string();
  return *path;
}

inline std::vector<JsonRow>& JsonRows() {
  static auto* rows = new std::vector<JsonRow>();
  return *rows;
}

/// Consumes `--json <path>` / `--json=<path>` from argv so the remaining
/// flags can go to benchmark::Initialize untouched.
inline void ParseJsonFlag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      JsonOutputPath() = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      JsonOutputPath() = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

inline void RecordJson(
    std::string bench, std::vector<std::pair<std::string, double>> metrics,
    std::vector<std::pair<std::string, std::string>> labels = {}) {
  JsonRows().push_back(
      {std::move(bench), std::move(metrics), std::move(labels)});
}

/// Peak resident set size of the process in KB (getrusage; Linux reports
/// ru_maxrss in kilobytes).  Monotone over the process lifetime.
inline uint64_t PeakRssKb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<uint64_t>(usage.ru_maxrss);
}

/// Appends host-resource columns to a row: `allocs` (heap allocations
/// performed during the measured region — pass the AllocCount() snapshot
/// taken before it) and `peak_rss_kb`.  Wall-clock-side observability for
/// the native index core: virtual results never depend on these.
inline void AppendResourceColumns(
    uint64_t allocs_before,
    std::vector<std::pair<std::string, double>>* metrics) {
  metrics->emplace_back("allocs",
                        static_cast<double>(AllocCount() - allocs_before));
  metrics->emplace_back("peak_rss_kb", static_cast<double>(PeakRssKb()));
}

/// Appends the global key/path interner's footprint to a row:
/// `intern_keys` / `intern_bytes` / `intern_paths` / `intern_path_bytes`.
/// The interner is process-global, so values are cumulative across the
/// deployments a bench binary runs (deterministic for a fixed bench
/// order).
inline void AppendInternColumns(
    std::vector<std::pair<std::string, double>>* metrics) {
  const index::InternCore& core = index::InternCore::Global();
  const index::InternStats stats = core.keys().Stats();
  metrics->emplace_back("intern_keys", static_cast<double>(stats.keys));
  metrics->emplace_back("intern_bytes", static_cast<double>(stats.bytes));
  metrics->emplace_back("intern_paths",
                        static_cast<double>(core.paths().size()));
  metrics->emplace_back("intern_path_bytes",
                        static_cast<double>(core.paths().bytes()));
}

/// Appends the chaos-layer counters (docs/FAULTS.md) to a row's metrics:
/// all zero under the default empty fault plan, so trajectory tracking
/// flags any run where faults started firing or retries crept in.
inline void AppendFaultColumns(
    const cloud::Usage& usage,
    std::vector<std::pair<std::string, double>>* metrics) {
  metrics->emplace_back("retries",
                        static_cast<double>(usage.retried_requests));
  metrics->emplace_back("redeliveries",
                        static_cast<double>(usage.sqs_redeliveries));
  metrics->emplace_back("faulted_requests",
                        static_cast<double>(usage.faulted_requests));
  metrics->emplace_back("degraded_queries",
                        static_cast<double>(usage.degraded_queries));
  metrics->emplace_back("breaker_opens",
                        static_cast<double>(usage.breaker_opens));
  metrics->emplace_back("scrub_repaired",
                        static_cast<double>(usage.scrub_repaired));
  // Mutable-corpus maintenance (docs/MUTABILITY.md): zero in the static
  // benches, so the trajectory flags a bench that starts mutating.
  metrics->emplace_back("tombstones_written",
                        static_cast<double>(usage.tombstones_written));
  metrics->emplace_back("compact_gc_items",
                        static_cast<double>(usage.compact_gc_items));
  metrics->emplace_back("compact_uris",
                        static_cast<double>(usage.compact_uris));
}

/// Appends the metric registry's counters to a row's metrics as
/// `metric.<name>` columns (service request/error totals, retry and
/// fault counts, ...).  Gauges and histograms are skipped: the gauges
/// mirror Usage fields the rows already carry, and a histogram has no
/// single-number column.  std::map iteration makes the column set
/// sorted, so rows stay diff-stable run over run.
inline void AppendMetricColumns(
    const common::MetricRegistry& registry,
    std::vector<std::pair<std::string, double>>* metrics) {
  for (const auto& name : registry.Names()) {
    if (const common::Counter* counter = registry.FindCounter(name)) {
      metrics->emplace_back("metric." + name,
                            static_cast<double>(counter->value()));
    }
  }
}

/// Writes the recorded rows to the --json path (no-op when unset).
/// Column order inside a row is deterministic — "bench" first, then
/// metrics and labels each sorted by name — and every string is escaped,
/// so the files diff cleanly across runs and survive quotes/backslashes
/// in bench names or label values.
inline void FlushJson() {
  if (JsonOutputPath().empty()) return;
  std::FILE* out = std::fopen(JsonOutputPath().c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", JsonOutputPath().c_str());
    return;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < JsonRows().size(); ++i) {
    JsonRow row = JsonRows()[i];
    std::stable_sort(
        row.metrics.begin(), row.metrics.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::stable_sort(
        row.labels.begin(), row.labels.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::fprintf(out, "  {\"bench\": \"%s\"",
                 JsonEscape(row.bench).c_str());
    for (const auto& [name, value] : row.metrics) {
      // NaN/inf are not JSON; null keeps the row parseable and the
      // broken metric visible.
      if (value == value && value - value == 0) {
        std::fprintf(out, ", \"%s\": %.6g",
                     JsonEscape(name).c_str(), value);
      } else {
        std::fprintf(out, ", \"%s\": null",
                     JsonEscape(name).c_str());
      }
    }
    for (const auto& [name, value] : row.labels) {
      std::fprintf(out, ", \"%s\": \"%s\"",
                   JsonEscape(name).c_str(),
                   JsonEscape(value).c_str());
    }
    std::fprintf(out, "}%s\n", i + 1 < JsonRows().size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("json results written to %s\n", JsonOutputPath().c_str());
}

/// A fully-loaded warehouse plus its private cloud.
struct Deployment {
  std::unique_ptr<cloud::CloudEnv> env;
  std::unique_ptr<engine::Warehouse> warehouse;
  engine::IndexingRunReport indexing;
  /// Charges for uploading the documents to the file store (ud$ terms).
  cloud::Bill upload_bill;
  /// Charges for the index build phase only (Table 6's decomposition).
  cloud::Bill indexing_bill;
  /// Host wall-clock spent inside RunIndexers() — the quantity the
  /// host-parallel extraction pipeline shrinks (virtual results are
  /// unaffected by it).
  double indexing_wall_ms = 0;
};

/// Builds a warehouse over the benchmark corpus and (if `use_index`)
/// runs the indexing fleet.  `index_instances` is the paper's 8-large
/// build fleet by default.
inline Deployment Deploy(index::StrategyKind strategy, bool use_index,
                         int query_instances, cloud::InstanceType type,
                         const xmark::GeneratorConfig& corpus,
                         engine::IndexBackend backend =
                             engine::IndexBackend::kDynamoDb,
                         bool full_text = true, int index_instances = 8,
                         const cloud::CloudConfig& cloud_config =
                             cloud::CloudConfig(),
                         engine::PlannerForce planner_force =
                             engine::PlannerForce::kAuto) {
  Deployment d;
  d.env = std::make_unique<cloud::CloudEnv>(cloud_config);
  engine::WarehouseConfig config;
  config.strategy = strategy;
  config.planner_force = planner_force;
  config.use_index = use_index;
  config.num_instances = use_index ? index_instances : query_instances;
  config.instance_type = cloud::InstanceType::kLarge;  // build fleet
  config.backend = backend;
  config.extract.include_words = full_text;
  config.host_threads = HostThreadsFromEnv();
  // Build phase uses large instances (paper Section 8.2: DynamoDB is the
  // bottleneck, so xl would not help); query phase re-deploys below.
  d.warehouse =
      std::make_unique<engine::Warehouse>(d.env.get(), config);
  Status status = d.warehouse->Setup();
  if (!status.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", status.ToString().c_str());
    std::abort();
  }
  xmark::XmarkGenerator generator(corpus);
  const cloud::Usage before_upload = d.env->meter().Snapshot();
  for (int i = 0; i < corpus.num_documents; ++i) {
    auto doc = generator.Generate(i);
    status = d.warehouse->SubmitDocument(doc.uri, std::move(doc.text));
    if (!status.ok()) {
      std::fprintf(stderr, "submit failed: %s\n", status.ToString().c_str());
      std::abort();
    }
  }
  const cloud::Usage before_indexing = d.env->meter().Snapshot();
  d.upload_bill =
      d.env->meter().ComputeBill(before_indexing - before_upload);
  if (use_index) {
    const auto wall_start = std::chrono::steady_clock::now();
    auto report = d.warehouse->RunIndexers();
    d.indexing_wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    if (!report.ok()) {
      std::fprintf(stderr, "indexing failed: %s\n",
                   report.status().ToString().c_str());
      std::abort();
    }
    d.indexing = report.value();
    d.indexing_bill = d.env->meter().ComputeBill(
        d.env->meter().Snapshot() - before_indexing);
  }
  // Query phase: swap the fleet configuration by rebuilding the facade
  // over the same cloud (documents and index tables persist in the
  // simulated services).
  engine::WarehouseConfig query_config = config;
  query_config.num_instances = query_instances;
  query_config.instance_type = type;
  auto fresh = std::make_unique<engine::Warehouse>(d.env.get(),
                                                   query_config);
  // Re-register documents without re-uploading.
  fresh->AdoptExistingData(*d.warehouse);
  d.warehouse = std::move(fresh);
  return d;
}

/// Ground truth for Table 5's "# docs with results" column: evaluates
/// the query over the whole corpus without any index and counts the
/// distinct documents contributing to some result row (for value-join
/// queries a row draws on one document per tree pattern).
inline uint64_t DocsWithResults(const query::Query& query,
                                const xmark::GeneratorConfig& corpus) {
  xmark::XmarkGenerator generator(corpus);
  std::vector<xml::Document> docs;
  for (int i = 0; i < corpus.num_documents; ++i) {
    auto generated = generator.Generate(i);
    auto doc = xml::ParseDocument(generated.uri, generated.text);
    if (doc.ok()) docs.push_back(std::move(doc).value());
  }
  std::vector<const xml::Document*> ptrs;
  ptrs.reserve(docs.size());
  for (const auto& doc : docs) ptrs.push_back(&doc);
  return query::Evaluator::Evaluate(query, ptrs).ContributingDocuments();
}

/// Formats seconds (virtual) with two decimals.
inline std::string Secs(cloud::Micros micros) {
  return StrFormat("%.2f", static_cast<double>(micros) / 1e6);
}

/// Prints a separator + table title the way the paper labels tables.
inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace webdex::bench

#endif  // WEBDEX_BENCH_HARNESS_H_
