// Reproduces paper Figure 10: "Impact of using multiple EC2 instances" —
// the whole workload submitted 16 times in a row (160 queries), drained
// by 1 vs 8 query-processing instances, for L and XL types and every
// strategy.
//
// Expected shape (paper): 8 instances reduce the makespan dramatically
// (close to 8x for L); the relative gain is smaller for XL because many
// strong instances approach the index store's shared provisioned
// capacity.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"

namespace webdex::bench {
namespace {

int Repeats() {
  if (const char* r = std::getenv("WEBDEX_BENCH_REPEAT")) {
    return std::atoi(r);
  }
  return 16;
}

std::map<std::string, cloud::Micros>& Results() {
  static auto* results = new std::map<std::string, cloud::Micros>();
  return *results;
}

void BM_Parallelism(benchmark::State& state) {
  const index::StrategyKind kind =
      index::AllStrategyKinds()[static_cast<size_t>(state.range(0))];
  const cloud::InstanceType type = state.range(1) == 0
                                       ? cloud::InstanceType::kLarge
                                       : cloud::InstanceType::kExtraLarge;
  const int instances = static_cast<int>(state.range(2));
  for (auto _ : state) {
    Deployment d =
        Deploy(kind, /*use_index=*/true, instances, type, CorpusConfig());
    std::vector<std::string> workload;
    for (int r = 0; r < Repeats(); ++r) {
      for (const auto& query : Workload()) workload.push_back(query);
    }
    auto report = d.warehouse->ExecuteQueries(workload);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    const std::string key =
        StrFormat("%s/%s/%d", index::StrategyKindName(kind),
                  cloud::InstanceTypeName(type), instances);
    Results()[key] = report.value().makespan;
    state.counters["makespan_s"] =
        static_cast<double>(report.value().makespan) / 1e6;
    state.counters["queries"] = static_cast<double>(workload.size());
  }
  state.SetLabel(StrFormat("%s %s x%d", index::StrategyKindName(kind),
                           cloud::InstanceTypeName(type), instances));
}

BENCHMARK(BM_Parallelism)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}, {1, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintFigure() {
  PrintHeader(StrFormat(
      "Figure 10: workload x%d response time (s, virtual), 1 vs 8 "
      "instances",
      Repeats()));
  std::printf("%-8s %6s %16s %16s %10s\n", "Strategy", "Type",
              "1 instance (s)", "8 instances (s)", "speedup");
  for (const index::StrategyKind kind : index::AllStrategyKinds()) {
    for (const char* type : {"L", "XL"}) {
      const auto one = Results().find(
          StrFormat("%s/%s/1", index::StrategyKindName(kind), type));
      const auto eight = Results().find(
          StrFormat("%s/%s/8", index::StrategyKindName(kind), type));
      if (one == Results().end() || eight == Results().end()) continue;
      std::printf("%-8s %6s %16s %16s %9.1fx\n",
                  index::StrategyKindName(kind), type,
                  Secs(one->second).c_str(), Secs(eight->second).c_str(),
                  static_cast<double>(one->second) /
                      static_cast<double>(eight->second));
    }
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintFigure();
  return 0;
}
