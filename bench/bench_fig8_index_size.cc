// Reproduces paper Figure 8: "Index size and storage costs per month
// with full-text indexing (top) and without (bottom)".
//
// For every strategy the corpus is indexed twice — with and without word
// (w‖·) keys — and the figure reports the raw index payload, the
// DynamoDB per-item storage overhead, and the resulting monthly storage
// bill next to the XML data itself.
//
// Expected shape (paper): LUP and 2LUPI are the largest (2LUPI larger
// than the data with full text), LU the smallest; dropping full-text
// keys shrinks every index substantially; DynamoDB overhead is
// noticeable but grows slower than index size.

#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "cost/cost_model.h"

namespace webdex::bench {
namespace {

constexpr double kGb = 1024.0 * 1024.0 * 1024.0;

struct Row {
  std::string label;
  uint64_t raw_bytes = 0;
  uint64_t overhead_bytes = 0;
  double monthly_cost = 0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

uint64_t& DataBytes() {
  static uint64_t bytes = 0;
  return bytes;
}

void BM_IndexSize(benchmark::State& state) {
  const index::StrategyKind kind =
      index::AllStrategyKinds()[static_cast<size_t>(state.range(0))];
  const bool full_text = state.range(1) != 0;
  for (auto _ : state) {
    Deployment d = Deploy(kind, /*use_index=*/true, 1,
                          cloud::InstanceType::kLarge, IndexingCorpusConfig(),
                          engine::IndexBackend::kDynamoDb, full_text);
    Row row;
    row.label = StrFormat("%s%s", index::StrategyKindName(kind),
                          full_text ? "" : " (no words)");
    row.raw_bytes = d.warehouse->IndexRawBytes();
    row.overhead_bytes = d.warehouse->IndexOverheadBytes();
    cost::CostModel model(d.env->meter().pricing());
    cost::IndexMetrics index_metrics;
    index_metrics.raw_gb = static_cast<double>(row.raw_bytes) / kGb;
    index_metrics.overhead_gb =
        static_cast<double>(row.overhead_bytes) / kGb;
    row.monthly_cost =
        model.pricing().idx_month_gb * index_metrics.total_gb();
    DataBytes() = d.warehouse->data_bytes();
    state.counters["index_MB"] =
        static_cast<double>(row.raw_bytes + row.overhead_bytes) /
        (1024.0 * 1024.0);
    state.counters["usd_month_at_40GB_scale"] = row.monthly_cost;
    Rows().push_back(std::move(row));
  }
  state.SetLabel(StrFormat("%s %s", index::StrategyKindName(kind),
                           full_text ? "full-text" : "no-words"));
}

BENCHMARK(BM_IndexSize)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 0}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintFigure() {
  PrintHeader("Figure 8: index size and monthly storage cost");
  const double data_mb = static_cast<double>(DataBytes()) / (1024 * 1024);
  const cloud::Pricing pricing;
  std::printf("XML data: %.2f MB -> $%.6f/month at ST$m,GB\n", data_mb,
              pricing.st_month_gb * static_cast<double>(DataBytes()) / kGb);
  std::printf("%-18s %14s %16s %14s %16s\n", "Strategy", "Content (MB)",
              "Overhead (MB)", "vs data (x)", "$/month");
  for (const auto& row : Rows()) {
    const double content_mb =
        static_cast<double>(row.raw_bytes) / (1024 * 1024);
    const double overhead_mb =
        static_cast<double>(row.overhead_bytes) / (1024 * 1024);
    std::printf("%-18s %14.2f %16.2f %14.2f %16.6f\n", row.label.c_str(),
                content_mb, overhead_mb,
                (content_mb + overhead_mb) / data_mb, row.monthly_cost);
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintFigure();
  return 0;
}
