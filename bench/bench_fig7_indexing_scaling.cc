// Reproduces paper Figure 7: "Indexing in 8 large (L) EC2 instances" —
// indexing time as a function of corpus size.
//
// The corpus is swept from 1/4 to 4/4 of the benchmark size for every
// strategy.  Expected shape (paper): indexing time grows linearly with
// data size for each strategy, with 2LUPI > LUP > LUI > LU.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"

namespace webdex::bench {
namespace {

struct Point {
  uint64_t corpus_bytes = 0;
  cloud::Micros total = 0;
};

std::map<std::string, std::vector<Point>>& Series() {
  static auto* series = new std::map<std::string, std::vector<Point>>();
  return *series;
}

constexpr int kSteps = 4;

void BM_IndexingScaling(benchmark::State& state) {
  const index::StrategyKind kind =
      index::AllStrategyKinds()[static_cast<size_t>(state.range(0))];
  const int step = static_cast<int>(state.range(1));
  xmark::GeneratorConfig corpus = IndexingCorpusConfig();
  corpus.num_documents = corpus.num_documents * step / kSteps;
  for (auto _ : state) {
    const uint64_t allocs_before = AllocCount();
    Deployment d = Deploy(kind, /*use_index=*/true, 1,
                          cloud::InstanceType::kLarge, corpus);
    Point point;
    point.corpus_bytes = d.warehouse->data_bytes();
    point.total = d.indexing.makespan;
    state.counters["corpus_MB"] =
        static_cast<double>(point.corpus_bytes) / (1024.0 * 1024.0);
    state.counters["index_s"] = static_cast<double>(point.total) / 1e6;
    state.counters["wall_ms"] = d.indexing_wall_ms;
    std::vector<std::pair<std::string, double>> metrics{
        {"wall_ms", d.indexing_wall_ms},
        {"host_threads", static_cast<double>(HostThreadsFromEnv())},
        {"corpus_mb",
         static_cast<double>(point.corpus_bytes) / (1024.0 * 1024.0)},
        {"makespan_s", static_cast<double>(point.total) / 1e6}};
    AppendResourceColumns(allocs_before, &metrics);
    AppendInternColumns(&metrics);
    AppendFaultColumns(d.env->meter().usage(), &metrics);
    AppendMetricColumns(d.env->metrics(), &metrics);
    RecordJson(StrFormat("fig7/%s/%d-%d", index::StrategyKindName(kind),
                         step, kSteps),
               std::move(metrics));
    Series()[index::StrategyKindName(kind)].push_back(point);
  }
  state.SetLabel(StrFormat("%s %d/%d corpus",
                           index::StrategyKindName(kind), step, kSteps));
}

BENCHMARK(BM_IndexingScaling)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 2, 3, 4}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintFigure() {
  PrintHeader(
      "Figure 7: indexing time vs documents size, 8 large instances "
      "(virtual time)");
  std::printf("%-10s %14s %16s %18s\n", "Strategy", "Corpus (MB)",
              "Indexing (s)", "s per MB (linear?)");
  for (const auto& [strategy, points] : Series()) {
    for (const auto& point : points) {
      const double mb =
          static_cast<double>(point.corpus_bytes) / (1024.0 * 1024.0);
      std::printf("%-10s %14.2f %16s %18.2f\n", strategy.c_str(), mb,
                  Secs(point.total).c_str(),
                  static_cast<double>(point.total) / 1e6 / mb);
    }
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  webdex::bench::ParseJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintFigure();
  webdex::bench::FlushJson();
  return 0;
}
