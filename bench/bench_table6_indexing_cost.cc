// Reproduces paper Table 6: "Indexing costs for 40 GB using L
// instances" — the metered dollar bill of building each index, broken
// down by AWS service (DynamoDB / EC2 / S3 + SQS).
//
// Expected shape (paper): 2LUPI most expensive, LU cheapest, with
// LU < LUI < LUP < 2LUPI; DynamoDB dominates EC2 within each strategy;
// the S3 + SQS share is constant across strategies and negligible.

#include <benchmark/benchmark.h>

#include "bench/harness.h"

namespace webdex::bench {
namespace {

struct Row {
  std::string strategy;
  cloud::Bill bill;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

void BM_IndexingCost(benchmark::State& state) {
  const index::StrategyKind kind =
      index::AllStrategyKinds()[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    Deployment d = Deploy(kind, /*use_index=*/true, 1,
                          cloud::InstanceType::kLarge, IndexingCorpusConfig());
    Row row;
    row.strategy = index::StrategyKindName(kind);
    row.bill = d.indexing_bill;
    state.counters["dynamodb_usd"] = row.bill.dynamodb;
    state.counters["ec2_usd"] = row.bill.ec2;
    state.counters["total_usd"] = row.bill.total();
    Rows().push_back(std::move(row));
  }
  state.SetLabel(index::StrategyKindName(kind));
}

BENCHMARK(BM_IndexingCost)
    ->DenseRange(0, 3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintTable() {
  const auto corpus = IndexingCorpusConfig();
  PrintHeader(StrFormat(
      "Table 6: indexing costs (%d documents, 8 L instances, metered)",
      corpus.num_documents));
  std::printf("%-10s %14s %12s %12s %12s\n", "Strategy", "DynamoDB",
              "EC2", "S3 + SQS", "Total");
  for (const auto& row : Rows()) {
    std::printf("%-10s %14.6f %12.6f %12.6f %12.6f\n",
                row.strategy.c_str(), row.bill.dynamodb, row.bill.ec2,
                row.bill.s3 + row.bill.sqs, row.bill.total());
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintTable();
  return 0;
}
