// Reproduces paper Table 5: "Query processing details" — for each of the
// ten workload queries, the number of document IDs retrieved from the
// index by every strategy, the number of documents actually containing
// results, and the result size.
//
// Expected shape (paper): LU >= LUP >= LUI = 2LUPI; LUI/2LUPI exact
// (equal to "# docs with results") on the pure tree-pattern queries; all
// strategies imprecise on the three value-join queries (q8-q10), whose
// counts are summed over the query's tree patterns.

#include <benchmark/benchmark.h>

#include "bench/harness.h"

namespace webdex::bench {
namespace {

struct Row {
  int query = 0;
  uint64_t docs[4] = {0, 0, 0, 0};  // LU, LUP, LUI, 2LUPI
  uint64_t docs_with_results = 0;
  uint64_t result_bytes = 0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>(Workload().size());
  return *rows;
}

void BM_QueryDetails(benchmark::State& state) {
  const size_t strategy_index = static_cast<size_t>(state.range(0));
  const index::StrategyKind kind = index::AllStrategyKinds()[strategy_index];
  for (auto _ : state) {
    Deployment d = Deploy(kind, /*use_index=*/true, 1,
                          cloud::InstanceType::kLarge, CorpusConfig());
    for (size_t q = 0; q < Workload().size(); ++q) {
      auto outcome = d.warehouse->ExecuteQuery(Workload()[q]);
      if (!outcome.ok()) {
        state.SkipWithError(outcome.status().ToString().c_str());
        return;
      }
      Row& row = Rows()[q];
      row.query = static_cast<int>(q) + 1;
      row.docs[strategy_index] = outcome.value().docs_from_index;
      row.result_bytes = outcome.value().result.SizeBytes();
    }
  }
  state.SetLabel(index::StrategyKindName(kind));
}

BENCHMARK(BM_QueryDetails)
    ->DenseRange(0, 3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Ground truth: evaluate each query over the whole corpus (no index).
void BM_GroundTruth(benchmark::State& state) {
  const auto corpus = CorpusConfig();
  for (auto _ : state) {
    for (size_t q = 0; q < Workload().size(); ++q) {
      auto parsed = query::ParseQuery(Workload()[q]);
      if (!parsed.ok()) {
        state.SkipWithError(parsed.status().ToString().c_str());
        return;
      }
      Rows()[q].docs_with_results = DocsWithResults(parsed.value(), corpus);
    }
  }
}

BENCHMARK(BM_GroundTruth)->Iterations(1)->Unit(benchmark::kMillisecond);

void PrintTable() {
  const auto corpus = CorpusConfig();
  PrintHeader(StrFormat("Table 5: query processing details (%d documents)",
                        corpus.num_documents));
  std::printf("%-6s %8s %8s %8s %8s | %12s %14s\n", "Query", "LU", "LUP",
              "LUI", "2LUPI", "w. results", "results (KB)");
  for (const auto& row : Rows()) {
    std::printf("q%-5d %8llu %8llu %8llu %8llu | %12llu %14.2f\n",
                row.query, (unsigned long long)row.docs[0],
                (unsigned long long)row.docs[1],
                (unsigned long long)row.docs[2],
                (unsigned long long)row.docs[3],
                (unsigned long long)row.docs_with_results,
                static_cast<double>(row.result_bytes) / 1024.0);
  }
  std::printf(
      "(value-join queries q8-q10 sum the document IDs retrieved per tree "
      "pattern, as in the paper)\n");
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintTable();
  return 0;
}
