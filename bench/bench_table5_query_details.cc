// Reproduces paper Table 5: "Query processing details" — for each of the
// ten workload queries, the number of document IDs retrieved from the
// index by every strategy, the number of documents actually containing
// results, and the result size.
//
// Expected shape (paper): LU >= LUP >= LUI = 2LUPI; LUI/2LUPI exact
// (equal to "# docs with results") on the pure tree-pattern queries; all
// strategies imprecise on the three value-join queries (q8-q10), whose
// counts are summed over the query's tree patterns.
//
// The planner section (docs/PLANNER.md) extends the table with the
// access path chosen per query and compares the 2LUPI planner against
// forced always-LUP / always-LUI baselines: the per-query LUP-vs-LUI
// choice should strictly lower the total billed lookup cost.

#include <benchmark/benchmark.h>

#include "bench/harness.h"

namespace webdex::bench {
namespace {

struct Row {
  int query = 0;
  uint64_t docs[4] = {0, 0, 0, 0};  // LU, LUP, LUI, 2LUPI
  std::string path[4];              // planner's chosen access path
  double est_usd[4] = {0, 0, 0, 0};
  double actual_usd[4] = {0, 0, 0, 0};
  uint64_t docs_with_results = 0;
  uint64_t result_bytes = 0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>(Workload().size());
  return *rows;
}

// Billed index-lookup cost per query for 2LUPI under the planner's
// automatic choice and the two forced baselines.
struct BaselineRun {
  std::vector<double> lookup_usd;  // per query
  std::vector<std::string> paths;  // per query
  double total_usd = 0;
};

BaselineRun& Baseline(int mode) {  // 0 = auto, 1 = force-lup, 2 = force-lui
  static auto* runs = new BaselineRun[3];
  return runs[mode];
}

void BM_QueryDetails(benchmark::State& state) {
  const size_t strategy_index = static_cast<size_t>(state.range(0));
  const index::StrategyKind kind = index::AllStrategyKinds()[strategy_index];
  for (auto _ : state) {
    Deployment d = Deploy(kind, /*use_index=*/true, 1,
                          cloud::InstanceType::kLarge, CorpusConfig());
    for (size_t q = 0; q < Workload().size(); ++q) {
      auto outcome = d.warehouse->ExecuteQuery(Workload()[q]);
      if (!outcome.ok()) {
        state.SkipWithError(outcome.status().ToString().c_str());
        return;
      }
      Row& row = Rows()[q];
      row.query = static_cast<int>(q) + 1;
      row.docs[strategy_index] = outcome.value().docs_from_index;
      row.path[strategy_index] = outcome.value().chosen_path;
      row.est_usd[strategy_index] = outcome.value().estimated_cost_usd;
      row.actual_usd[strategy_index] = outcome.value().actual_cost_usd;
      row.result_bytes = outcome.value().result.SizeBytes();
      RecordJson(
          StrFormat("table5/%s/q%zu", index::StrategyKindName(kind), q + 1),
          {{"docs_from_index",
            static_cast<double>(outcome.value().docs_from_index)},
           {"estimated_cost_usd", outcome.value().estimated_cost_usd},
           {"actual_cost_usd", outcome.value().actual_cost_usd},
           {"planner_fallbacks",
            static_cast<double>(outcome.value().planner_fallbacks)}},
          {{"chosen_path", outcome.value().chosen_path}});
    }
  }
  state.SetLabel(index::StrategyKindName(kind));
}

BENCHMARK(BM_QueryDetails)
    ->DenseRange(0, 3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// 2LUPI with the planner free to pick a side per query (auto) versus
// pinned to one of its two tables.  The billed cost of a lookup choice
// is the whole per-query bill: the index reads themselves (DynamoDB
// read units) plus the candidate fetches and VM time the candidate set
// implies — LUP wins the former, LUI the latter, and only their sum
// shows which side was right.  The result-store write is identical on
// both sides, so it cancels out of the comparison.
void BM_PlannerBaselines(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  static const engine::PlannerForce kForce[3] = {
      engine::PlannerForce::kAuto, engine::PlannerForce::kLup,
      engine::PlannerForce::kLui};
  static const char* kModeName[3] = {"auto", "force-lup", "force-lui"};
  for (auto _ : state) {
    Deployment d = Deploy(index::StrategyKind::k2LUPI, /*use_index=*/true, 1,
                          cloud::InstanceType::kLarge, CorpusConfig(),
                          engine::IndexBackend::kDynamoDb, true, 8,
                          cloud::CloudConfig(), kForce[mode]);
    BaselineRun& run = Baseline(mode);
    run = BaselineRun();
    for (const auto& query : Workload()) {
      const cloud::Usage before = d.env->meter().Snapshot();
      auto outcome = d.warehouse->ExecuteQuery(query);
      if (!outcome.ok()) {
        state.SkipWithError(outcome.status().ToString().c_str());
        return;
      }
      const double lookup_usd =
          d.env->meter()
              .ComputeBill(d.env->meter().Snapshot() - before)
              .total();
      run.lookup_usd.push_back(lookup_usd);
      run.paths.push_back(outcome.value().chosen_path);
      run.total_usd += lookup_usd;
    }
    state.counters["lookup_usd"] = run.total_usd;
    RecordJson(StrFormat("table5/2lupi_baseline/%s", kModeName[mode]),
               {{"lookup_usd", run.total_usd}});
  }
  state.SetLabel(StrFormat("2LUPI %s", kModeName[mode]));
}

BENCHMARK(BM_PlannerBaselines)
    ->DenseRange(0, 2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Ground truth: evaluate each query over the whole corpus (no index).
void BM_GroundTruth(benchmark::State& state) {
  const auto corpus = CorpusConfig();
  for (auto _ : state) {
    for (size_t q = 0; q < Workload().size(); ++q) {
      auto parsed = query::ParseQuery(Workload()[q]);
      if (!parsed.ok()) {
        state.SkipWithError(parsed.status().ToString().c_str());
        return;
      }
      Rows()[q].docs_with_results = DocsWithResults(parsed.value(), corpus);
    }
  }
}

BENCHMARK(BM_GroundTruth)->Iterations(1)->Unit(benchmark::kMillisecond);

void PrintTable() {
  const auto corpus = CorpusConfig();
  PrintHeader(StrFormat("Table 5: query processing details (%d documents)",
                        corpus.num_documents));
  std::printf("%-6s %8s %8s %8s %8s | %12s %14s\n", "Query", "LU", "LUP",
              "LUI", "2LUPI", "w. results", "results (KB)");
  for (const auto& row : Rows()) {
    std::printf("q%-5d %8llu %8llu %8llu %8llu | %12llu %14.2f\n",
                row.query, (unsigned long long)row.docs[0],
                (unsigned long long)row.docs[1],
                (unsigned long long)row.docs[2],
                (unsigned long long)row.docs[3],
                (unsigned long long)row.docs_with_results,
                static_cast<double>(row.result_bytes) / 1024.0);
  }
  std::printf(
      "(value-join queries q8-q10 sum the document IDs retrieved per tree "
      "pattern, as in the paper)\n");

  PrintHeader("Planner choices per query (docs/PLANNER.md)");
  std::printf("%-6s %-12s %12s %12s\n", "Query", "2LUPI path", "est ($)",
              "actual ($)");
  for (const auto& row : Rows()) {
    std::printf("q%-5d %-12s %12.8f %12.8f\n", row.query, row.path[3].c_str(),
                row.est_usd[3], row.actual_usd[3]);
  }

  const BaselineRun& auto_run = Baseline(0);
  const BaselineRun& lup_run = Baseline(1);
  const BaselineRun& lui_run = Baseline(2);
  if (!auto_run.lookup_usd.empty()) {
    PrintHeader("2LUPI billed cost of the lookup choice: planner vs forced");
    std::printf("%-6s %-12s %12s %12s %12s\n", "Query", "auto path",
                "auto ($)", "force-lup($)", "force-lui($)");
    for (size_t q = 0; q < auto_run.lookup_usd.size(); ++q) {
      std::printf("q%-5zu %-12s %12.8f %12.8f %12.8f\n", q + 1,
                  auto_run.paths[q].c_str(), auto_run.lookup_usd[q],
                  lup_run.lookup_usd[q], lui_run.lookup_usd[q]);
    }
    std::printf("%-6s %-12s %12.8f %12.8f %12.8f\n", "total", "",
                auto_run.total_usd, lup_run.total_usd, lui_run.total_usd);
    const bool beats_both = auto_run.total_usd < lup_run.total_usd &&
                            auto_run.total_usd < lui_run.total_usd;
    std::printf(
        "planner %s both forced baselines (auto $%.8f vs lup $%.8f / lui "
        "$%.8f)\n",
        beats_both ? "beats" : "DOES NOT beat", auto_run.total_usd,
        lup_run.total_usd, lui_run.total_usd);
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  webdex::bench::ParseJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintTable();
  webdex::bench::FlushJson();
  return 0;
}
