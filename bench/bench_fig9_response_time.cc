// Reproduces paper Figure 9: per-query response time for no-index and
// the four indexing strategies on large (L) and extra-large (XL) EC2
// instances (Fig. 9a), plus the detail split of look-up time into
// DynamoDB gets, physical plan execution, and S3 transfer + result
// extraction (Figs. 9b / 9c).
//
// Expected shape (paper): every index beats no-index by 1-2 orders of
// magnitude; LUP is the overall fastest strategy, LU close behind, then
// LUI and 2LUPI (within ~4x of each other); XL times are below L times;
// LU/LUP have cheaper look-up+plan phases than LUI/2LUPI, and transfer +
// evaluation time tracks the number of documents retrieved (Table 5).

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"

namespace webdex::bench {
namespace {

struct Cell {
  engine::QueryTimings timings;
};

// key: (config label like "LUP", instance type), value per query.
std::map<std::string, std::vector<Cell>>& Results() {
  static auto* results = new std::map<std::string, std::vector<Cell>>();
  return *results;
}

const char* kConfigs[] = {"NoIndex", "LU", "LUP", "LUI", "2LUPI"};

void RunConfig(benchmark::State& state, int config_index,
               cloud::InstanceType type) {
  const bool use_index = config_index > 0;
  const index::StrategyKind kind =
      use_index ? index::AllStrategyKinds()[config_index - 1]
                : index::StrategyKind::kLU;
  for (auto _ : state) {
    Deployment d =
        Deploy(kind, use_index, /*query_instances=*/1, type, CorpusConfig());
    std::vector<Cell> cells;
    cloud::Micros total = 0;
    for (const auto& query : Workload()) {
      auto outcome = d.warehouse->ExecuteQuery(query);
      if (!outcome.ok()) {
        state.SkipWithError(outcome.status().ToString().c_str());
        return;
      }
      cells.push_back(Cell{outcome.value().timings});
      total += outcome.value().timings.total;
    }
    state.counters["workload_s"] = static_cast<double>(total) / 1e6;
    Results()[StrFormat("%s/%s", kConfigs[config_index],
                        cloud::InstanceTypeName(type))] = std::move(cells);
  }
  state.SetLabel(StrFormat("%s on %s", kConfigs[config_index],
                           cloud::InstanceTypeName(type)));
}

void BM_ResponseTime(benchmark::State& state) {
  RunConfig(state, static_cast<int>(state.range(0)),
            state.range(1) == 0 ? cloud::InstanceType::kLarge
                                : cloud::InstanceType::kExtraLarge);
}

BENCHMARK(BM_ResponseTime)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintFigure() {
  PrintHeader(
      "Figure 9a: response time (s, virtual) per query; L and XL, one "
      "instance");
  std::printf("%-12s", "Config");
  for (size_t q = 1; q <= Workload().size(); ++q) {
    std::printf(" %8s", StrFormat("q%zu", q).c_str());
  }
  std::printf("\n");
  for (const char* config : kConfigs) {
    for (const char* type : {"L", "XL"}) {
      const auto it = Results().find(StrFormat("%s/%s", config, type));
      if (it == Results().end()) continue;
      std::printf("%-12s", StrFormat("%s/%s", config, type).c_str());
      for (const auto& cell : it->second) {
        std::printf(" %8s", Secs(cell.timings.total).c_str());
      }
      std::printf("\n");
    }
  }

  for (const char* type : {"L", "XL"}) {
    PrintHeader(StrFormat(
        "Figure 9%s: detail on %s instance — DynamoDB get / plan "
        "execution / S3 transfer + results extraction (s)",
        type[0] == 'L' ? "b" : "c", type));
    std::printf("%-8s", "Query");
    for (int c = 1; c <= 4; ++c) std::printf(" %26s", kConfigs[c]);
    std::printf("\n");
    for (size_t q = 0; q < Workload().size(); ++q) {
      std::printf("q%-7zu", q + 1);
      for (int c = 1; c <= 4; ++c) {
        const auto it = Results().find(StrFormat("%s/%s", kConfigs[c], type));
        if (it == Results().end() || q >= it->second.size()) continue;
        const auto& t = it->second[q].timings;
        std::printf(" %26s",
                    StrFormat("%s/%s/%s", Secs(t.index_get).c_str(),
                              Secs(t.plan_exec).c_str(),
                              Secs(t.transfer_eval).c_str())
                        .c_str());
      }
      std::printf("\n");
    }
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintFigure();
  return 0;
}
