// Reproduces paper Table 4: "Indexing times using 8 large (L) instances".
//
// For each strategy, the whole corpus is loaded through the loader queue
// and drained by 8 simulated large EC2 instances; the table reports the
// average per-instance extraction time, the average per-instance index
// uploading time (DynamoDB writes, throttled by the shared provisioned
// capacity), and the total queue-to-queue makespan.
//
// Expected shape (paper): total times ordered LU < LUI < LUP < 2LUPI, and
// uploading dominating extraction for every strategy.

#include <benchmark/benchmark.h>

#include "bench/harness.h"

namespace webdex::bench {
namespace {

struct Row {
  std::string strategy;
  cloud::Micros extract_avg = 0;
  cloud::Micros upload_avg = 0;
  cloud::Micros total = 0;
  double wall_ms = 0;  // host wall-clock of the indexing run
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

constexpr int kFleet = 8;

void BM_IndexCorpus(benchmark::State& state) {
  const index::StrategyKind kind =
      index::AllStrategyKinds()[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    const uint64_t allocs_before = AllocCount();
    Deployment d = Deploy(kind, /*use_index=*/true, /*query_instances=*/1,
                          cloud::InstanceType::kLarge, IndexingCorpusConfig());
    Row row;
    row.strategy = index::StrategyKindName(kind);
    row.extract_avg = d.indexing.extraction_micros / kFleet;
    row.upload_avg = d.indexing.upload_micros / kFleet;
    row.total = d.indexing.makespan;
    row.wall_ms = d.indexing_wall_ms;
    state.counters["extract_s"] =
        static_cast<double>(row.extract_avg) / 1e6;
    state.counters["upload_s"] = static_cast<double>(row.upload_avg) / 1e6;
    state.counters["total_s"] = static_cast<double>(row.total) / 1e6;
    state.counters["docs"] = static_cast<double>(d.indexing.documents);
    state.counters["wall_ms"] = row.wall_ms;
    std::vector<std::pair<std::string, double>> metrics{
        {"wall_ms", row.wall_ms},
        {"host_threads", static_cast<double>(HostThreadsFromEnv())},
        {"extract_s", static_cast<double>(row.extract_avg) / 1e6},
        {"upload_s", static_cast<double>(row.upload_avg) / 1e6},
        {"makespan_s", static_cast<double>(row.total) / 1e6},
        {"docs", static_cast<double>(d.indexing.documents)},
        {"put_units", d.indexing.index_put_units},
        {"cost_dollars", d.indexing_bill.total()}};
    AppendResourceColumns(allocs_before, &metrics);
    AppendInternColumns(&metrics);
    AppendFaultColumns(d.env->meter().usage(), &metrics);
    AppendMetricColumns(d.env->metrics(), &metrics);
    RecordJson(StrFormat("table4/%s", row.strategy.c_str()),
               std::move(metrics));
    Rows().push_back(std::move(row));
  }
  state.SetLabel(index::StrategyKindName(kind));
}

BENCHMARK(BM_IndexCorpus)
    ->DenseRange(0, 3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintTable() {
  const auto corpus = IndexingCorpusConfig();
  PrintHeader(StrFormat(
      "Table 4: indexing times using %d large (L) instances "
      "(%d documents, virtual time)",
      kFleet, corpus.num_documents));
  std::printf("%-10s %22s %22s %14s %14s\n", "Strategy",
              "Avg extraction (s)", "Avg uploading (s)", "Total (s)",
              "Host wall (ms)");
  for (const auto& row : Rows()) {
    std::printf("%-10s %22s %22s %14s %14.0f\n", row.strategy.c_str(),
                Secs(row.extract_avg).c_str(), Secs(row.upload_avg).c_str(),
                Secs(row.total).c_str(), row.wall_ms);
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  webdex::bench::ParseJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintTable();
  webdex::bench::FlushJson();
  return 0;
}
