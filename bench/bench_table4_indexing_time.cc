// Reproduces paper Table 4: "Indexing times using 8 large (L) instances".
//
// For each strategy, the whole corpus is loaded through the loader queue
// and drained by 8 simulated large EC2 instances; the table reports the
// average per-instance extraction time, the average per-instance index
// uploading time (DynamoDB writes, throttled by the shared provisioned
// capacity), and the total queue-to-queue makespan.
//
// Expected shape (paper): total times ordered LU < LUI < LUP < 2LUPI, and
// uploading dominating extraction for every strategy.

#include <benchmark/benchmark.h>

#include "bench/harness.h"

namespace webdex::bench {
namespace {

struct Row {
  std::string strategy;
  cloud::Micros extract_avg = 0;
  cloud::Micros upload_avg = 0;
  cloud::Micros total = 0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

constexpr int kFleet = 8;

void BM_IndexCorpus(benchmark::State& state) {
  const index::StrategyKind kind =
      index::AllStrategyKinds()[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    Deployment d = Deploy(kind, /*use_index=*/true, /*query_instances=*/1,
                          cloud::InstanceType::kLarge, IndexingCorpusConfig());
    Row row;
    row.strategy = index::StrategyKindName(kind);
    row.extract_avg = d.indexing.extraction_micros / kFleet;
    row.upload_avg = d.indexing.upload_micros / kFleet;
    row.total = d.indexing.makespan;
    state.counters["extract_s"] =
        static_cast<double>(row.extract_avg) / 1e6;
    state.counters["upload_s"] = static_cast<double>(row.upload_avg) / 1e6;
    state.counters["total_s"] = static_cast<double>(row.total) / 1e6;
    state.counters["docs"] = static_cast<double>(d.indexing.documents);
    Rows().push_back(std::move(row));
  }
  state.SetLabel(index::StrategyKindName(kind));
}

BENCHMARK(BM_IndexCorpus)
    ->DenseRange(0, 3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintTable() {
  const auto corpus = IndexingCorpusConfig();
  PrintHeader(StrFormat(
      "Table 4: indexing times using %d large (L) instances "
      "(%d documents, virtual time)",
      kFleet, corpus.num_documents));
  std::printf("%-10s %22s %22s %14s\n", "Strategy",
              "Avg extraction (s)", "Avg uploading (s)", "Total (s)");
  for (const auto& row : Rows()) {
    std::printf("%-10s %22s %22s %14s\n", row.strategy.c_str(),
                Secs(row.extract_avg).c_str(), Secs(row.upload_avg).c_str(),
                Secs(row.total).c_str());
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintTable();
  return 0;
}
