// Ablation: full-text (w‖word) keys on vs off.
//
// Figure 8 shows the size cost of full-text keys; this ablation shows
// what they buy and what dropping them costs end to end: indexing time
// and cost shrink without words, but containment/equality queries lose
// index-side pruning and must fetch more documents (word-node pruning is
// skipped when the index has no word keys — see BuildKeyTwig).
//
// Expected shape: no-words indexing is substantially faster and cheaper;
// queries relying on word constants (q2, q5, q6) retrieve more documents
// and take longer; queries keyed on attributes/structure (q1, q3, q7)
// are unaffected.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"

namespace webdex::bench {
namespace {

struct Run {
  cloud::Micros index_makespan = 0;
  double index_cost = 0;
  std::vector<uint64_t> docs_fetched;
  std::vector<cloud::Micros> query_micros;
};

std::map<bool, Run>& Results() {
  static auto* results = new std::map<bool, Run>();
  return *results;
}

void BM_FullText(benchmark::State& state) {
  const bool full_text = state.range(0) != 0;
  for (auto _ : state) {
    Deployment d = Deploy(index::StrategyKind::kLUP, /*use_index=*/true, 1,
                          cloud::InstanceType::kLarge, CorpusConfig(),
                          engine::IndexBackend::kDynamoDb, full_text);
    Run run;
    run.index_makespan = d.indexing.makespan;
    run.index_cost = d.indexing_bill.total();
    for (const auto& query : Workload()) {
      auto outcome = d.warehouse->ExecuteQuery(query);
      if (!outcome.ok()) {
        state.SkipWithError(outcome.status().ToString().c_str());
        return;
      }
      run.docs_fetched.push_back(outcome.value().docs_fetched);
      run.query_micros.push_back(outcome.value().timings.total);
    }
    state.counters["index_s"] =
        static_cast<double>(run.index_makespan) / 1e6;
    state.counters["index_usd"] = run.index_cost;
    Results()[full_text] = std::move(run);
  }
  state.SetLabel(full_text ? "full-text" : "no-words");
}

BENCHMARK(BM_FullText)
    ->Arg(1)
    ->Arg(0)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintTable() {
  PrintHeader("Ablation: full-text keys on vs off (LUP)");
  const Run& with = Results()[true];
  const Run& without = Results()[false];
  std::printf("indexing: full-text %s ($%.6f)  |  no-words %s ($%.6f)\n",
              Secs(with.index_makespan).c_str(), with.index_cost,
              Secs(without.index_makespan).c_str(), without.index_cost);
  std::printf("%-6s %18s %18s %14s %14s\n", "Query", "docs (full-text)",
              "docs (no-words)", "t full (s)", "t nowords (s)");
  for (size_t q = 0; q < with.docs_fetched.size(); ++q) {
    std::printf("q%-5zu %18llu %18llu %14s %14s\n", q + 1,
                (unsigned long long)with.docs_fetched[q],
                (unsigned long long)without.docs_fetched[q],
                Secs(with.query_micros[q]).c_str(),
                Secs(without.query_micros[q]).c_str());
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintTable();
  return 0;
}
