// Reproduces paper Tables 7 and 8: comparison of this work's DynamoDB
// deployment against the authors' earlier SimpleDB-based system [8],
// normalized per MB of XML data: indexing speed (ms/MB) and cost ($/MB),
// monthly storage cost ($/GB of XML), query speed (ms/MB) and query cost
// ($/MB).
//
// Expected shape (paper): DynamoDB indexes 1-2 orders of magnitude
// faster and 1-3 orders of magnitude cheaper than SimpleDB; queries are
// several times faster and cheaper; SimpleDB's text-only values make its
// stored index larger (hex-armoured ID lists, chunked entries).

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"

namespace webdex::bench {
namespace {

struct Entry {
  double index_ms_per_mb = 0;
  double index_usd_per_mb = 0;
  double storage_usd_per_gb_xml = 0;
  double query_ms_per_mb = 0;
  double query_usd_per_mb = 0;
};

std::map<std::string, Entry>& Results() {
  static auto* results = new std::map<std::string, Entry>();
  return *results;
}

// SimpleDB is slow even in virtual time; use a reduced corpus so that
// per-MB normalization stays meaningful while runs stay short.
xmark::GeneratorConfig SmallCorpus() {
  xmark::GeneratorConfig config = CorpusConfig();
  config.num_documents = std::max(20, config.num_documents / 4);
  return config;
}

void BM_StoreComparison(benchmark::State& state) {
  const index::StrategyKind kind =
      index::AllStrategyKinds()[static_cast<size_t>(state.range(0))];
  const engine::IndexBackend backend =
      state.range(1) == 0 ? engine::IndexBackend::kDynamoDb
                          : engine::IndexBackend::kSimpleDb;
  const char* backend_name = state.range(1) == 0 ? "DynamoDB" : "SimpleDB";
  for (auto _ : state) {
    Deployment d = Deploy(kind, /*use_index=*/true, 1,
                          cloud::InstanceType::kLarge, SmallCorpus(),
                          backend);
    const double mb =
        static_cast<double>(d.warehouse->data_bytes()) / (1024.0 * 1024.0);
    Entry entry;
    entry.index_ms_per_mb =
        static_cast<double>(d.indexing.makespan) / 1000.0 / mb;
    entry.index_usd_per_mb = d.indexing_bill.total() / mb;
    const double index_gb =
        static_cast<double>(d.warehouse->IndexRawBytes() +
                            d.warehouse->IndexOverheadBytes()) /
        (1024.0 * 1024.0 * 1024.0);
    const double xml_gb = mb / 1024.0;
    const double month_rate =
        backend == engine::IndexBackend::kDynamoDb
            ? d.env->meter().pricing().idx_month_gb
            : d.env->meter().pricing().simpledb_month_gb;
    entry.storage_usd_per_gb_xml = month_rate * index_gb / xml_gb;

    const cloud::Usage before = d.env->meter().Snapshot();
    cloud::Micros query_micros = 0;
    for (const auto& query : Workload()) {
      auto outcome = d.warehouse->ExecuteQuery(query);
      if (!outcome.ok()) {
        state.SkipWithError(outcome.status().ToString().c_str());
        return;
      }
      query_micros += outcome.value().timings.total;
    }
    const cloud::Bill query_bill =
        d.env->meter().ComputeBill(d.env->meter().Snapshot() - before);
    entry.query_ms_per_mb =
        static_cast<double>(query_micros) / 1000.0 / mb;
    entry.query_usd_per_mb = query_bill.total() / mb;

    state.counters["index_ms_per_MB"] = entry.index_ms_per_mb;
    state.counters["query_ms_per_MB"] = entry.query_ms_per_mb;
    Results()[StrFormat("%s/%s", index::StrategyKindName(kind),
                        backend_name)] = entry;
  }
  state.SetLabel(
      StrFormat("%s on %s", index::StrategyKindName(kind), backend_name));
}

BENCHMARK(BM_StoreComparison)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintTables() {
  PrintHeader(
      "Table 7: indexing comparison — SimpleDB ([8]-style) vs DynamoDB "
      "(this work)");
  std::printf("%-10s %18s %18s | %18s %18s\n", "Strategy",
              "SimpleDB ms/MB", "DynamoDB ms/MB", "SimpleDB $/MB",
              "DynamoDB $/MB");
  for (const index::StrategyKind kind : index::AllStrategyKinds()) {
    const auto simple =
        Results()[StrFormat("%s/SimpleDB", index::StrategyKindName(kind))];
    const auto dynamo =
        Results()[StrFormat("%s/DynamoDB", index::StrategyKindName(kind))];
    std::printf("%-10s %18.1f %18.1f | %18.6f %18.6f\n",
                index::StrategyKindName(kind), simple.index_ms_per_mb,
                dynamo.index_ms_per_mb, simple.index_usd_per_mb,
                dynamo.index_usd_per_mb);
  }
  std::printf("Monthly storage ($ per GB of XML, LUP): SimpleDB %.3f, "
              "DynamoDB %.3f, data %.3f\n",
              Results()["LUP/SimpleDB"].storage_usd_per_gb_xml,
              Results()["LUP/DynamoDB"].storage_usd_per_gb_xml, 0.125);

  PrintHeader("Table 8: query processing comparison");
  std::printf("%-10s %18s %18s | %18s %18s\n", "Strategy",
              "SimpleDB ms/MB", "DynamoDB ms/MB", "SimpleDB $/MB",
              "DynamoDB $/MB");
  for (const index::StrategyKind kind : index::AllStrategyKinds()) {
    const auto simple =
        Results()[StrFormat("%s/SimpleDB", index::StrategyKindName(kind))];
    const auto dynamo =
        Results()[StrFormat("%s/DynamoDB", index::StrategyKindName(kind))];
    std::printf("%-10s %18.1f %18.1f | %18.8f %18.8f\n",
                index::StrategyKindName(kind), simple.query_ms_per_mb,
                dynamo.query_ms_per_mb, simple.query_usd_per_mb,
                dynamo.query_usd_per_mb);
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintTables();
  return 0;
}
