// Architecture frontier (docs/ARCHITECTURES.md): the same corpus built
// and queried under the deployment zoo — provisioned vs. on-demand
// capacity, 1/4/7-way hash-sharded index tables, 0/2-replica read pools —
// with the write capacity constrained so the build phase is
// capacity-bound (the regime the paper's Section 8.3 bottleneck lives
// in).  Two workloads per architecture:
//
//   build   submit + index the corpus against the constrained write
//           provision; sharding multiplies the provisioned rate per
//           logical table and on-demand lifts the rental entirely, so
//           both move the makespan/cost point
//   query   the 10-query mix, repeated; replicated architectures serve
//           settled reads from the half-price pool
//
// Every architecture must end in the bit-identical logical index and
// return the bit-identical query rows — the frontier is allowed to move
// only Usage, latency and dollars.  Rows that diverge fail the bench.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <vector>

#include "bench/harness.h"

namespace webdex::bench {
namespace {

// Provisioned write units per second: well under the 400-unit default,
// so the build phase queues on the fluid limiter and the capacity
// multipliers of the architectures under test are visible in makespan.
constexpr double kConstrainedWriteUnits = 80;

int QueryRepeats() {
  if (const char* r = std::getenv("WEBDEX_BENCH_REPEAT")) {
    return std::atoi(r);
  }
  return 3;
}

/// The sweep: the paper's baseline first; every other row must reproduce
/// its logical state bit-for-bit.
std::vector<cloud::ArchitectureSpec> Sweep() {
  std::vector<cloud::ArchitectureSpec> sweep;
  auto add = [&sweep](cloud::CapacityMode capacity, int shards,
                      int replicas) {
    cloud::ArchitectureSpec arch;
    arch.capacity = capacity;
    arch.shards = shards;
    arch.replicas = replicas;
    // Short replication lag: the query mix runs straight after the
    // build, and the point of a replicated row is the settled-read
    // discount, not a lag sensitivity study.
    if (replicas > 0) arch.replication_lag = 1000;
    sweep.push_back(arch);
  };
  add(cloud::CapacityMode::kProvisioned, 1, 0);  // the paper's deployment
  add(cloud::CapacityMode::kProvisioned, 4, 0);
  add(cloud::CapacityMode::kProvisioned, 7, 0);
  add(cloud::CapacityMode::kProvisioned, 1, 2);
  add(cloud::CapacityMode::kProvisioned, 4, 2);
  add(cloud::CapacityMode::kOnDemand, 1, 0);
  add(cloud::CapacityMode::kOnDemand, 4, 0);
  return sweep;
}

struct Row {
  double build_s = 0;
  double build_dollars = 0;
  double query_dollars = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

std::map<std::string, Row>& Results() {
  static auto* results = new std::map<std::string, Row>();
  return *results;
}

struct Equivalence {
  uint64_t fingerprint = 0;
  std::vector<std::vector<std::string>> rows;
  bool set = false;
};

Equivalence& Baseline() {
  static auto* baseline = new Equivalence();
  return *baseline;
}

// Nearest-rank percentile over the queries' virtual latencies.
double PercentileMs(std::vector<cloud::Micros> latencies, double p) {
  if (latencies.empty()) return 0;
  std::sort(latencies.begin(), latencies.end());
  const size_t rank = static_cast<size_t>(
      p * static_cast<double>(latencies.size() - 1) + 0.5);
  return static_cast<double>(latencies[rank]) / 1e3;
}

void BM_CompareArch(benchmark::State& state) {
  const cloud::ArchitectureSpec arch =
      Sweep()[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    cloud::CloudConfig cloud_config;
    cloud_config.arch = arch;
    cloud_config.dynamodb.write_units_per_second = kConstrainedWriteUnits;
    Deployment d = Deploy(index::StrategyKind::kLUP, /*use_index=*/true,
                          /*query_instances=*/8, cloud::InstanceType::kLarge,
                          CorpusConfig(), engine::IndexBackend::kDynamoDb,
                          /*full_text=*/true, /*index_instances=*/8,
                          cloud_config);

    // --- query workload -------------------------------------------------
    std::vector<std::string> workload;
    for (int r = 0; r < QueryRepeats(); ++r) {
      for (const auto& query : Workload()) workload.push_back(query);
    }
    const cloud::Usage before_queries = d.env->meter().Snapshot();
    auto report = d.warehouse->ExecuteQueries(workload);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    const cloud::Bill query_bill = d.env->meter().ComputeBill(
        d.env->meter().Snapshot() - before_queries);

    // --- equivalence gate -----------------------------------------------
    // Bit-identical logical index and first-outcome rows across the zoo;
    // a frontier over diverging states compares nothing.
    const uint64_t fingerprint =
        cloud::FingerprintStore(d.warehouse->index_store());
    const auto& rows = report.value().outcomes.front().result.rows;
    if (!Baseline().set) {
      Baseline().fingerprint = fingerprint;
      Baseline().rows = rows;
      Baseline().set = true;
    } else if (fingerprint != Baseline().fingerprint ||
               rows != Baseline().rows) {
      state.SkipWithError(
          StrFormat("architecture %s diverged from the baseline's "
                    "logical state",
                    arch.Name().c_str())
              .c_str());
      return;
    }

    std::vector<cloud::Micros> latencies;
    for (const auto& outcome : report.value().outcomes) {
      if (!outcome.shed) latencies.push_back(outcome.timings.total);
    }
    Row row;
    row.build_s = static_cast<double>(d.indexing.makespan) / 1e6;
    row.build_dollars = d.indexing_bill.total();
    row.query_dollars = query_bill.total();
    row.p50_ms = PercentileMs(latencies, 0.50);
    row.p99_ms = PercentileMs(latencies, 0.99);
    Results()[arch.Name()] = row;

    state.counters["makespan_s"] = row.build_s;
    state.counters["cost_dollars"] = row.build_dollars + row.query_dollars;
    state.counters["p99_ms"] = row.p99_ms;

    const cloud::Usage usage = d.env->meter().Snapshot();
    std::vector<std::pair<std::string, double>> build_metrics = {
        {"shards", static_cast<double>(arch.shards)},
        {"replicas", static_cast<double>(arch.replicas)},
        {"cost_dollars", row.build_dollars},
        {"makespan_s", row.build_s},
    };
    AppendFaultColumns(usage, &build_metrics);
    RecordJson(StrFormat("compare_arch/build/%s", arch.Name().c_str()),
               std::move(build_metrics),
               {{"arch", arch.Name()},
                {"capacity", cloud::CapacityModeName(arch.capacity)}});
    std::vector<std::pair<std::string, double>> query_metrics = {
        {"shards", static_cast<double>(arch.shards)},
        {"replicas", static_cast<double>(arch.replicas)},
        {"cost_dollars", row.query_dollars},
        {"p50_wall_us", row.p50_ms * 1e3},
        {"p99_wall_us", row.p99_ms * 1e3},
        {"replica_reads", static_cast<double>(usage.replica_reads)},
        {"ondemand_requests",
         static_cast<double>(usage.ondemand_requests)},
    };
    RecordJson(StrFormat("compare_arch/query/%s", arch.Name().c_str()),
               std::move(query_metrics),
               {{"arch", arch.Name()},
                {"capacity", cloud::CapacityModeName(arch.capacity)}});
  }
  state.SetLabel(arch.Name());
}

BENCHMARK(BM_CompareArch)
    ->DenseRange(0, 6)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintFigure() {
  PrintHeader(
      "Compare-arch frontier: build makespan/$ and query p50/p99/$ per "
      "architecture (identical logical state everywhere)");
  std::printf("%-16s %10s %10s %10s %10s %10s\n", "Arch", "build s",
              "build $", "query $", "p50 (ms)", "p99 (ms)");
  for (const auto& arch : Sweep()) {
    const auto it = Results().find(arch.Name());
    if (it == Results().end()) continue;
    std::printf("%-16s %10.2f %10.6f %10.6f %10.1f %10.1f\n",
                arch.Name().c_str(), it->second.build_s,
                it->second.build_dollars, it->second.query_dollars,
                it->second.p50_ms, it->second.p99_ms);
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  webdex::bench::ParseJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintFigure();
  webdex::bench::FlushJson();
  return 0;
}
