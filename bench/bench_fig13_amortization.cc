// Reproduces paper Figure 13: "Index cost amortization for a single
// extra large (XL) EC2 instance" — cumulated benefit of each index
// (no-index workload cost minus indexed workload cost, per run) against
// its one-off build cost, as the workload is re-run.
//
// Expected shape (paper): every strategy's curve crosses zero within a
// handful of runs — LU first, then LUP/LUI, 2LUPI last (the paper saw
// 4 / 8 / 8 / 16 runs).

#include <benchmark/benchmark.h>

#include <map>

#include "bench/harness.h"
#include "cost/cost_model.h"

namespace webdex::bench {
namespace {

struct Entry {
  double build_cost = 0;
  double workload_cost = 0;
};

std::map<std::string, Entry>& Results() {
  static auto* results = new std::map<std::string, Entry>();
  return *results;
}

double& NoIndexCost() {
  static double cost = 0;
  return cost;
}

double MeterWorkload(Deployment& d, benchmark::State& state) {
  const cloud::Usage before = d.env->meter().Snapshot();
  auto report = d.warehouse->ExecuteQueries(Workload());
  if (!report.ok()) {
    state.SkipWithError(report.status().ToString().c_str());
    return 0;
  }
  return d.env->meter().ComputeBill(d.env->meter().Snapshot() - before)
      .total();
}

void BM_Amortization(benchmark::State& state) {
  const int config_index = static_cast<int>(state.range(0));
  const bool use_index = config_index > 0;
  const index::StrategyKind kind =
      use_index ? index::AllStrategyKinds()[config_index - 1]
                : index::StrategyKind::kLU;
  for (auto _ : state) {
    Deployment d = Deploy(kind, use_index, 1,
                          cloud::InstanceType::kExtraLarge, CorpusConfig());
    const double workload_cost = MeterWorkload(d, state);
    if (!use_index) {
      NoIndexCost() = workload_cost;
      state.counters["workload_usd"] = workload_cost;
      continue;
    }
    Entry entry;
    entry.build_cost = d.indexing_bill.total();
    entry.workload_cost = workload_cost;
    state.counters["build_usd"] = entry.build_cost;
    state.counters["workload_usd"] = entry.workload_cost;
    Results()[index::StrategyKindName(kind)] = entry;
  }
}

BENCHMARK(BM_Amortization)
    ->DenseRange(0, 4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintFigure() {
  PrintHeader(
      "Figure 13: #runs x benefit(I, W) - buildingCost(I) on one XL "
      "instance");
  cost::CostModel model{cloud::Pricing::AwsSingaporeOct2012()};
  std::printf("%-8s %12s %12s %14s %14s\n", "Strategy", "build $",
              "benefit/run", "crosses 0 at", "net @ 20 runs");
  for (const auto& [strategy, entry] : Results()) {
    const double benefit = NoIndexCost() - entry.workload_cost;
    const double crossing =
        benefit > 0 ? entry.build_cost / benefit : -1;
    std::printf("%-8s %12.6f %12.6f %14.1f %14.6f\n", strategy.c_str(),
                entry.build_cost, benefit, crossing,
                model.AmortizationNetValue(benefit, entry.build_cost, 20));
  }
  std::printf("\nSeries (net value after n runs):\n%-5s", "n");
  for (const auto& [strategy, entry] : Results()) {
    (void)entry;
    std::printf(" %12s", strategy.c_str());
  }
  std::printf("\n");
  for (int runs = 0; runs <= 20; runs += 2) {
    std::printf("%-5d", runs);
    for (const auto& [strategy, entry] : Results()) {
      (void)strategy;
      const double benefit = NoIndexCost() - entry.workload_cost;
      std::printf(" %12.6f",
                  model.AmortizationNetValue(benefit, entry.build_cost,
                                             runs));
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintFigure();
  return 0;
}
