// Ablation: batched vs. one-at-a-time index uploads.
//
// The paper batches documents and uses DynamoDB's batchPut "to minimize
// the number of calls needed to load the index" (Section 8.2).  This
// ablation quantifies that design choice: the same extracted items are
// written either through full 25-item batch requests or as one item per
// API request, and we compare virtual upload time and request counts.
//
// Expected shape: batching cuts API requests ~25x and upload latency by
// roughly the per-request round-trip share; billed capacity units are
// identical (they depend on item sizes only).

#include <benchmark/benchmark.h>

#include "bench/harness.h"

namespace webdex::bench {
namespace {

class Agent : public cloud::SimAgent {};

struct Run {
  cloud::Micros upload_micros = 0;
  uint64_t api_requests = 0;
  uint64_t write_units = 0;
};

Run& Batched() {
  static Run run;
  return run;
}
Run& Single() {
  static Run run;
  return run;
}

void BM_Upload(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  xmark::GeneratorConfig corpus = CorpusConfig();
  corpus.num_documents = std::max(20, corpus.num_documents / 4);
  for (auto _ : state) {
    cloud::CloudEnv env;
    auto strategy =
        index::IndexingStrategy::Create(index::StrategyKind::kLUP);
    Agent agent;
    for (const auto& table : strategy->TableNames()) {
      if (!env.dynamodb().CreateTable(agent, table).ok()) {
        state.SkipWithError("table setup failed");
        return;
      }
    }
    xmark::XmarkGenerator generator(corpus);
    const cloud::Usage before = env.meter().Snapshot();
    for (int i = 0; i < corpus.num_documents; ++i) {
      auto generated = generator.Generate(i);
      auto doc = xml::ParseDocument(generated.uri, generated.text);
      if (!doc.ok()) continue;
      index::ExtractStats stats;
      auto items = strategy->ExtractItems(doc.value(), {}, env.dynamodb(),
                                          env.rng(), &stats);
      if (!items.ok()) continue;
      for (const auto& batch : items.value()) {
        if (batched) {
          (void)env.dynamodb().BatchPut(agent, batch.table, batch.items);
        } else {
          for (const auto& item : batch.items) {
            (void)env.dynamodb().BatchPut(agent, batch.table, {item});
          }
        }
      }
    }
    const cloud::Usage delta = env.meter().Snapshot() - before;
    Run& run = batched ? Batched() : Single();
    run.upload_micros = agent.now();
    run.api_requests = delta.ddb_put_requests;
    run.write_units = delta.ddb_write_units;
    state.counters["upload_s"] = static_cast<double>(agent.now()) / 1e6;
    state.counters["api_requests"] =
        static_cast<double>(delta.ddb_put_requests);
  }
  state.SetLabel(batched ? "batchPut(25)" : "single put");
}

BENCHMARK(BM_Upload)
    ->Arg(1)
    ->Arg(0)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void PrintTable() {
  PrintHeader("Ablation: batched vs single-item index uploads (LUP)");
  std::printf("%-16s %14s %14s %14s\n", "Mode", "Upload (s)",
              "API requests", "Write units");
  std::printf("%-16s %14s %14llu %14llu\n", "batchPut(25)",
              Secs(Batched().upload_micros).c_str(),
              (unsigned long long)Batched().api_requests,
              (unsigned long long)Batched().write_units);
  std::printf("%-16s %14s %14llu %14llu\n", "single put",
              Secs(Single().upload_micros).c_str(),
              (unsigned long long)Single().api_requests,
              (unsigned long long)Single().write_units);
  if (Batched().upload_micros > 0) {
    std::printf("batching speedup: %.1fx, request reduction: %.1fx\n",
                static_cast<double>(Single().upload_micros) /
                    static_cast<double>(Batched().upload_micros),
                static_cast<double>(Single().api_requests) /
                    static_cast<double>(Batched().api_requests));
  }
}

}  // namespace
}  // namespace webdex::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  webdex::bench::PrintTable();
  return 0;
}
